// The Filesystem interface: the contract between the mount layer (Vfs) and
// any concrete file system.
//
// This is the load-bearing abstraction of the whole reproduction.  The
// paper's architecture works *because* everything is a file system:
//   - MemFs        : plain storage (the yanc FS's backing store)
//   - YancFs       : MemFs + network-object schema semantics (§3)
//   - ViewFs       : a slice/virtualization of another filesystem (§4.2)
//   - ReplicatedFs : a distributed filesystem (§6)
// All of them implement this one interface, so views stack on views, the
// distributed layer slides underneath the yanc FS without anyone noticing,
// and Linux-namespace-style isolation is just a different root NodeId.
//
// The interface is node-based (like the FUSE lowlevel API): the Vfs layer
// owns path walking, symlink following and mount crossing; filesystems only
// ever see (parent-node, name) pairs.  Calls are stateless — there are no
// per-open server-side handles — which is what makes the replicated
// implementation straightforward.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "yanc/util/result.hpp"
#include "yanc/vfs/types.hpp"
#include "yanc/vfs/watch.hpp"

namespace yanc::vfs {

class Filesystem {
 public:
  virtual ~Filesystem() = default;

  /// Root directory node of this filesystem.
  virtual NodeId root() const = 0;

  // --- namespace operations -------------------------------------------
  virtual Result<NodeId> lookup(NodeId parent, const std::string& name) = 0;
  virtual Result<Stat> getattr(NodeId node) = 0;
  virtual Result<std::vector<DirEntry>> readdir(NodeId dir) = 0;

  virtual Result<NodeId> mkdir(NodeId parent, const std::string& name,
                               std::uint32_t mode,
                               const Credentials& creds) = 0;
  virtual Result<NodeId> create(NodeId parent, const std::string& name,
                                std::uint32_t mode,
                                const Credentials& creds) = 0;
  virtual Result<NodeId> symlink(NodeId parent, const std::string& name,
                                 const std::string& target,
                                 const Credentials& creds) = 0;
  virtual Result<std::string> readlink(NodeId node) = 0;
  /// Hard link `node` into `parent` as `name`.
  virtual Status link(NodeId node, NodeId parent, const std::string& name,
                      const Credentials& creds) = 0;

  virtual Status unlink(NodeId parent, const std::string& name,
                        const Credentials& creds) = 0;
  virtual Status rmdir(NodeId parent, const std::string& name,
                       const Credentials& creds) = 0;
  virtual Status rename(NodeId old_parent, const std::string& old_name,
                        NodeId new_parent, const std::string& new_name,
                        const Credentials& creds) = 0;

  // --- data operations --------------------------------------------------
  virtual Result<std::string> read(NodeId node, std::uint64_t offset,
                                   std::uint64_t size,
                                   const Credentials& creds) = 0;
  virtual Result<std::uint64_t> write(NodeId node, std::uint64_t offset,
                                      std::string_view data,
                                      const Credentials& creds) = 0;
  virtual Status truncate(NodeId node, std::uint64_t size,
                          const Credentials& creds) = 0;

  // --- metadata ----------------------------------------------------------
  virtual Status chmod(NodeId node, std::uint32_t mode,
                       const Credentials& creds) = 0;
  virtual Status chown(NodeId node, Uid uid, Gid gid,
                       const Credentials& creds) = 0;

  virtual Status setxattr(NodeId node, const std::string& name,
                          std::vector<std::uint8_t> value,
                          const Credentials& creds) = 0;
  virtual Result<std::vector<std::uint8_t>> getxattr(
      NodeId node, const std::string& name) = 0;
  virtual Result<std::vector<std::string>> listxattr(NodeId node) = 0;
  virtual Status removexattr(NodeId node, const std::string& name,
                             const Credentials& creds) = 0;

  // --- permissions --------------------------------------------------------
  /// Checks rwx access on one node (POSIX mode bits + ACL if present).
  virtual Status access(NodeId node, std::uint8_t want,
                        const Credentials& creds) = 0;

  // --- monitoring -----------------------------------------------------------
  /// Registers `queue` for events matching `mask` on `node` (§5.2).
  virtual Result<WatchRegistry::WatchId> watch(NodeId node, std::uint32_t mask,
                                               WatchQueuePtr queue) = 0;
  virtual void unwatch(WatchRegistry::WatchId id) = 0;
};

using FilesystemPtr = std::shared_ptr<Filesystem>;

}  // namespace yanc::vfs
