// The Filesystem interface: the contract between the mount layer (Vfs) and
// any concrete file system.
//
// This is the load-bearing abstraction of the whole reproduction.  The
// paper's architecture works *because* everything is a file system:
//   - MemFs        : plain storage (the yanc FS's backing store)
//   - YancFs       : MemFs + network-object schema semantics (§3)
//   - ViewFs       : a slice/virtualization of another filesystem (§4.2)
//   - ReplicatedFs : a distributed filesystem (§6)
// All of them implement this one interface, so views stack on views, the
// distributed layer slides underneath the yanc FS without anyone noticing,
// and Linux-namespace-style isolation is just a different root NodeId.
//
// The interface is node-based (like the FUSE lowlevel API): the Vfs layer
// owns path walking, symlink following and mount crossing; filesystems only
// ever see (parent-node, name) pairs.  Calls are stateless — there are no
// per-open server-side handles — which is what makes the replicated
// implementation straightforward.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "yanc/util/result.hpp"
#include "yanc/vfs/types.hpp"
#include "yanc/vfs/watch.hpp"

namespace yanc::vfs {

/// change_gen() value meaning "this filesystem does not track namespace
/// changes" — the Vfs resolution cache never caches a path that crosses
/// such a filesystem.
inline constexpr std::uint64_t kUncacheableGen = ~std::uint64_t{0};

class Filesystem {
 public:
  virtual ~Filesystem() = default;

  /// Root directory node of this filesystem.
  virtual NodeId root() const = 0;

  /// Namespace-change generation for the Vfs resolution (dentry) cache: a
  /// counter that advances whenever an existing path→node binding, or the
  /// permission to traverse one, may have changed (unlink/rmdir/rename/
  /// chmod/chown/xattr).  Creations need not bump it — they cannot
  /// invalidate a previously successful resolution (negative results are
  /// never cached).  The default says "untracked", which disables caching
  /// across this filesystem.  Implementations that mutate below the Vfs
  /// (e.g. replication apply paths) inherit correct invalidation for free
  /// by bumping at the storage layer.
  virtual std::uint64_t change_gen() const { return kUncacheableGen; }

  // --- namespace operations -------------------------------------------
  virtual Result<NodeId> lookup(NodeId parent, const std::string& name) = 0;
  virtual Result<Stat> getattr(NodeId node) = 0;
  virtual Result<std::vector<DirEntry>> readdir(NodeId dir) = 0;

  virtual Result<NodeId> mkdir(NodeId parent, const std::string& name,
                               std::uint32_t mode,
                               const Credentials& creds) = 0;
  virtual Result<NodeId> create(NodeId parent, const std::string& name,
                                std::uint32_t mode,
                                const Credentials& creds) = 0;
  virtual Result<NodeId> symlink(NodeId parent, const std::string& name,
                                 const std::string& target,
                                 const Credentials& creds) = 0;
  virtual Result<std::string> readlink(NodeId node) = 0;
  /// Hard link `node` into `parent` as `name`.
  [[nodiscard]] virtual Status link(NodeId node, NodeId parent, const std::string& name,
                      const Credentials& creds) = 0;

  [[nodiscard]] virtual Status unlink(NodeId parent, const std::string& name,
                        const Credentials& creds) = 0;
  [[nodiscard]] virtual Status rmdir(NodeId parent, const std::string& name,
                       const Credentials& creds) = 0;
  [[nodiscard]] virtual Status rename(NodeId old_parent, const std::string& old_name,
                        NodeId new_parent, const std::string& new_name,
                        const Credentials& creds) = 0;

  // --- data operations --------------------------------------------------
  virtual Result<std::string> read(NodeId node, std::uint64_t offset,
                                   std::uint64_t size,
                                   const Credentials& creds) = 0;
  virtual Result<std::uint64_t> write(NodeId node, std::uint64_t offset,
                                      std::string_view data,
                                      const Credentials& creds) = 0;
  [[nodiscard]] virtual Status truncate(NodeId node, std::uint64_t size,
                          const Credentials& creds) = 0;
  /// Replaces the entire content of `node` with `data`.  The base
  /// implementation is truncate + write — two separately-visible states, so
  /// a concurrent reader can observe the intermediate empty file.
  /// Filesystems that can do better override it to commit the new content
  /// in one step (MemFs swaps it under a single content-shard lock);
  /// Vfs::write_file routes through this so whole-file rewrites are atomic
  /// with respect to readers.
  virtual Result<std::uint64_t> replace(NodeId node, std::string_view data,
                                        const Credentials& creds) {
    if (auto ec = truncate(node, 0, creds); ec) return ec;
    return write(node, 0, data, creds);
  }

  // --- metadata ----------------------------------------------------------
  [[nodiscard]] virtual Status chmod(NodeId node, std::uint32_t mode,
                       const Credentials& creds) = 0;
  [[nodiscard]] virtual Status chown(NodeId node, Uid uid, Gid gid,
                       const Credentials& creds) = 0;

  [[nodiscard]] virtual Status setxattr(NodeId node, const std::string& name,
                          std::vector<std::uint8_t> value,
                          const Credentials& creds) = 0;
  virtual Result<std::vector<std::uint8_t>> getxattr(
      NodeId node, const std::string& name) = 0;
  virtual Result<std::vector<std::string>> listxattr(NodeId node) = 0;
  [[nodiscard]] virtual Status removexattr(NodeId node, const std::string& name,
                             const Credentials& creds) = 0;

  // --- permissions --------------------------------------------------------
  /// Checks rwx access on one node (POSIX mode bits + ACL if present).
  [[nodiscard]] virtual Status access(NodeId node, std::uint8_t want,
                        const Credentials& creds) = 0;

  // --- monitoring -----------------------------------------------------------
  /// Registers `queue` for events matching `mask` on `node` (§5.2).
  virtual Result<WatchRegistry::WatchId> watch(NodeId node, std::uint32_t mask,
                                               WatchQueuePtr queue) = 0;
  virtual void unwatch(WatchRegistry::WatchId id) = 0;
};

using FilesystemPtr = std::shared_ptr<Filesystem>;

}  // namespace yanc::vfs
