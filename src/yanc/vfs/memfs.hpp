// MemFs: the reference in-memory Filesystem implementation.
//
// This is the substitution for the kernel VFS + FUSE backing store the
// paper's prototype uses (§8): full POSIX semantics — permissions with
// sticky-bit deletion rules, ACL-aware access checks, hard links with nlink
// accounting, symlinks, rename with all the edge cases, xattrs, quotas
// (ENOSPC), and inotify-style change notification at every mutation point.
//
// Concurrency model (docs/PERFORMANCE.md has the full writeup):
//   * mu_ (shared_mutex) — shared for read-only namespace ops (lookup,
//     getattr, readdir, readlink, xattr reads, access), exclusive for
//     namespace mutations (create/unlink/rename/chmod/...).
//   * data shards — file content plus the size/version/mtime it implies
//     are additionally guarded by a per-inode lock shard, so write() needs
//     only mu_ shared + its shard exclusive: content writes to distinct
//     files proceed in parallel with each other and with all readers.
//   * watch emission — mutations queue events while locked and fan them
//     out after unlock (emit_mu_ keeps fan-out in operation order), so no
//     consumer queue is ever touched under the filesystem lock.
// The libyanc fastpath (yanc::fast) still bypasses all of this, and the
// benchmarks measure the difference (EXP-2).
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "yanc/dbg/lockdep.hpp"
#include "yanc/vfs/acl.hpp"
#include "yanc/vfs/filesystem.hpp"

namespace yanc::vfs {

struct MemFsOptions {
  std::size_t max_inodes = 0;  // 0 = unlimited
  std::size_t max_bytes = 0;   // total file payload quota; 0 = unlimited
  std::size_t name_max = 255;  // per-component name limit (ENAMETOOLONG)
};

class MemFs : public Filesystem {
 public:
  explicit MemFs(MemFsOptions options = {});

  NodeId root() const override { return kRootNode; }

  std::uint64_t change_gen() const override {
    return namespace_gen_.load(std::memory_order_acquire);
  }

  Result<NodeId> lookup(NodeId parent, const std::string& name) override;
  Result<Stat> getattr(NodeId node) override;
  Result<std::vector<DirEntry>> readdir(NodeId dir) override;

  Result<NodeId> mkdir(NodeId parent, const std::string& name,
                       std::uint32_t mode, const Credentials& creds) override;
  Result<NodeId> create(NodeId parent, const std::string& name,
                        std::uint32_t mode, const Credentials& creds) override;
  Result<NodeId> symlink(NodeId parent, const std::string& name,
                         const std::string& target,
                         const Credentials& creds) override;
  Result<std::string> readlink(NodeId node) override;
  [[nodiscard]] Status link(NodeId node, NodeId parent, const std::string& name,
              const Credentials& creds) override;

  [[nodiscard]] Status unlink(NodeId parent, const std::string& name,
                const Credentials& creds) override;
  [[nodiscard]] Status rmdir(NodeId parent, const std::string& name,
               const Credentials& creds) override;
  [[nodiscard]] Status rename(NodeId old_parent, const std::string& old_name,
                NodeId new_parent, const std::string& new_name,
                const Credentials& creds) override;

  Result<std::string> read(NodeId node, std::uint64_t offset,
                           std::uint64_t size,
                           const Credentials& creds) override;
  Result<std::uint64_t> write(NodeId node, std::uint64_t offset,
                              std::string_view data,
                              const Credentials& creds) override;
  [[nodiscard]] Status truncate(NodeId node, std::uint64_t size,
                  const Credentials& creds) override;
  Result<std::uint64_t> replace(NodeId node, std::string_view data,
                                const Credentials& creds) override;

  [[nodiscard]] Status chmod(NodeId node, std::uint32_t mode,
               const Credentials& creds) override;
  [[nodiscard]] Status chown(NodeId node, Uid uid, Gid gid,
               const Credentials& creds) override;

  [[nodiscard]] Status setxattr(NodeId node, const std::string& name,
                  std::vector<std::uint8_t> value,
                  const Credentials& creds) override;
  Result<std::vector<std::uint8_t>> getxattr(NodeId node,
                                             const std::string& name) override;
  Result<std::vector<std::string>> listxattr(NodeId node) override;
  [[nodiscard]] Status removexattr(NodeId node, const std::string& name,
                     const Credentials& creds) override;

  [[nodiscard]] Status access(NodeId node, std::uint8_t want,
                const Credentials& creds) override;

  Result<WatchRegistry::WatchId> watch(NodeId node, std::uint32_t mask,
                                       WatchQueuePtr queue) override;
  void unwatch(WatchRegistry::WatchId id) override;

  // --- introspection (tests, quotas, benchmarks) -------------------------
  std::size_t inode_count() const;
  std::size_t bytes_used() const;

  /// Canonical path of a node from parent hints ("/" for the root).
  /// Used by layers that need a location-independent name for a node
  /// (e.g. replication).
  Result<std::string> path_of(NodeId node) const;

  /// Value of xattr `name` on `node` or its nearest ancestor that has it.
  std::optional<std::vector<std::uint8_t>> nearest_xattr(
      NodeId node, const std::string& name) const;

 protected:
  static constexpr NodeId kRootNode = 1;

  struct Inode {
    FileType type = FileType::regular;
    std::uint32_t mode = 0;
    Uid uid = 0;
    Gid gid = 0;
    std::uint32_t nlink = 0;
    std::uint64_t version = 0;
    std::uint64_t mtime_ns = 0;
    std::uint64_t ctime_ns = 0;
    std::string data;                        // regular file content
    std::map<std::string, NodeId> children;  // directory entries (sorted)
    std::string target;                      // symlink target
    std::map<std::string, std::vector<std::uint8_t>> xattrs;
    std::optional<Acl> acl;  // parsed cache of the ACL xattr
    // Canonical parent hint for directed notification (child-name events).
    NodeId parent_hint = kInvalidNode;
    std::string name_hint;
  };

  // All hooks below are called with mu_ held — exclusively, except
  // on_write, which the concurrent write() path calls with mu_ shared plus
  // the inode's data shard exclusive.  on_write overrides may therefore
  // read structures that only mutate under the exclusive lock, but must
  // not write them.

  /// Lets subclasses (YancFs) veto or observe writes to typed files.
  [[nodiscard]] virtual Status on_write(NodeId /*node*/, const std::string& /*content*/) {
    return ok_status();
  }
  /// Called after a directory was created; YancFs populates schema children
  /// (as the creating identity, so applications own their own objects).
  virtual void on_mkdir(NodeId /*node*/, NodeId /*parent*/,
                        const std::string& /*name*/,
                        const Credentials& /*creds*/) {}
  /// Whether rmdir on this non-empty directory may recurse (paper §3.2:
  /// removing a switch removes its subtree).
  virtual bool rmdir_recursive_allowed(NodeId /*node*/) { return false; }
  /// Lets subclasses veto symlink targets (e.g. `peer` must point at a
  /// port, §3.3).  Called before the link is created.
  [[nodiscard]] virtual Status on_symlink(NodeId /*parent*/, const std::string& /*name*/,
                            const std::string& /*target*/) {
    return ok_status();
  }
  /// Called just before an inode is destroyed (nlink hit zero or subtree
  /// teardown); lets subclasses drop bookkeeping keyed by NodeId.
  virtual void on_remove_node(NodeId /*node*/) {}

  // --- internals shared with subclasses ----------------------------------
  mutable dbg::SharedMutex<dbg::Rank::vfs_namespace> mu_;
  // Serializes post-unlock watch fan-out so event delivery order matches
  // operation order.  Lock order: mu_ → emit_mu_ → per-queue locks
  // (vfs_namespace → vfs_emit → watch_queue in the dbg rank table).
  dbg::Mutex<dbg::Rank::vfs_emit> emit_mu_;
  WatchRegistry watches_;

  // Per-inode data lock shards: file content (and the size/version/mtime
  // it implies) may be mutated either under mu_ exclusive, or under mu_
  // shared + the inode's shard exclusive; readers hold mu_ shared + the
  // shard shared.  Sharded by NodeId so distinct files rarely collide.
  static constexpr std::size_t kDataShards = 64;
  using DataShard = dbg::SharedMutex<dbg::Rank::vfs_data_shard>;
  mutable std::array<DataShard, kDataShards> data_shards_;
  DataShard& shard_of(NodeId id) const {
    return data_shards_[id % kDataShards];
  }

  // A mutation's watch notifications, recorded under the lock and fanned
  // out after it drops.  `drop` defers WatchRegistry::drop_node the same
  // way so a destroyed node's delete_self still reaches its subscribers.
  struct PendingAction {
    enum class Kind : std::uint8_t { emit, drop } kind;
    Event ev;  // emit payload; ev.node is the target for drop
  };

  /// RAII scope for namespace mutations: takes mu_ exclusively, and on
  /// destruction drains pending_actions_ and delivers them outside the
  /// lock (in operation order, via emit_mu_).  Public mutators and
  /// subclass overrides open one of these instead of locking mu_ directly.
  class MutationScope {
   public:
    explicit MutationScope(MemFs& fs) : fs_(fs), lock_(fs.mu_) {}
    ~MutationScope();
    MutationScope(const MutationScope&) = delete;
    MutationScope& operator=(const MutationScope&) = delete;

   private:
    MemFs& fs_;
    dbg::UniqueLock<dbg::SharedMutex<dbg::Rank::vfs_namespace>> lock_;
  };

  Inode* find(NodeId id);
  const Inode* find(NodeId id) const;
  [[nodiscard]] Status check_access_locked(const Inode& node, std::uint8_t want,
                             const Credentials& creds) const;
  Result<NodeId> new_node_locked(FileType type, std::uint32_t mode,
                                 const Credentials& creds);
  Result<NodeId> add_child_locked(NodeId parent, const std::string& name,
                                  FileType type, std::uint32_t mode,
                                  const Credentials& creds);
  /// Recursively destroys a subtree (no permission checks; caller checked).
  void destroy_subtree_locked(NodeId node);
  void touch_locked(Inode& node);
  std::uint64_t now_ns() { return tick_.fetch_add(1, std::memory_order_relaxed) + 1; }
  /// Existing path→node bindings (or traversal permissions) changed:
  /// advance the generation the Vfs resolution cache validates against.
  void bump_change_gen() {
    namespace_gen_.fetch_add(1, std::memory_order_release);
  }
  /// Queues an event for post-unlock delivery (requires mu_ exclusive).
  void queue_event_locked(NodeId node, std::uint32_t mask,
                          std::string name = {}, std::uint32_t cookie = 0);
  /// Queues a deferred WatchRegistry::drop_node (requires mu_ exclusive).
  void queue_drop_locked(NodeId node);
  /// Queues an event on the node and, when a parent hint exists, a matching
  /// named event on the parent directory (inotify delivers both).
  void emit_node_event_locked(NodeId node, std::uint32_t mask);

  // Unlocked-entry helpers so subclass overrides can reuse base behaviour.
  Result<NodeId> mkdir_locked(NodeId parent, const std::string& name,
                              std::uint32_t mode, const Credentials& creds);
  Result<NodeId> create_locked(NodeId parent, const std::string& name,
                               std::uint32_t mode, const Credentials& creds);
  Result<std::uint64_t> write_locked(NodeId node, std::uint64_t offset,
                                     std::string_view data,
                                     const Credentials& creds);
  Result<std::string> read_locked(NodeId node, std::uint64_t offset,
                                  std::uint64_t size,
                                  const Credentials& creds);
  Result<NodeId> lookup_locked(NodeId parent, const std::string& name) const;
  [[nodiscard]] Status unlink_locked(NodeId parent, const std::string& name,
                       const Credentials& creds);
  [[nodiscard]] Status rmdir_locked(NodeId parent, const std::string& name,
                      const Credentials& creds);
  [[nodiscard]] Status rename_locked(NodeId old_parent, const std::string& old_name,
                       NodeId new_parent, const std::string& new_name,
                       const Credentials& creds);
  Result<NodeId> symlink_locked(NodeId parent, const std::string& name,
                                const std::string& target,
                                const Credentials& creds);

  MemFsOptions options_;
  std::unordered_map<NodeId, Inode> inodes_;
  NodeId next_node_ = kRootNode + 1;
  // Atomic: the concurrent write() path advances these under mu_ shared.
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::size_t> bytes_used_{0};
  std::uint32_t next_cookie_ = 1;
  std::atomic<std::uint64_t> namespace_gen_{1};
  std::vector<PendingAction> pending_actions_;  // guarded by mu_ exclusive
};

}  // namespace yanc::vfs
