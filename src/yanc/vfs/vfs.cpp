#include "yanc/vfs/vfs.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <limits>

#include "yanc/obs/tracer.hpp"
#include "yanc/util/strings.hpp"
#include "yanc/vfs/memfs.hpp"

namespace yanc::vfs {

namespace {
constexpr int kMaxSymlinkDepth = 40;

/// Records the wall time of one public Vfs operation into its latency
/// histogram on scope exit.  Sampled 1-in-64: two steady_clock reads per
/// op would cost more than the op itself on the lookup fast path, and the
/// percentile estimate doesn't need every op.
class OpTimer {
 public:
  explicit OpTimer(obs::Histogram* histogram) noexcept {
    static std::atomic<std::uint32_t> tick{0};
    if ((tick.fetch_add(1, std::memory_order_relaxed) & 63u) == 0) {
      histogram_ = histogram;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~OpTimer() {
    if (!histogram_) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  obs::Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

std::string normalize_path(std::string_view path) {
  std::vector<std::string> out;
  for (auto& comp : split_nonempty(path, '/')) {
    if (comp == ".") continue;
    out.push_back(std::move(comp));
  }
  if (out.empty()) return "/";
  std::string result;
  for (const auto& comp : out) {
    result += '/';
    result += comp;
  }
  return result;
}

Vfs::Vfs() : metrics_(std::make_shared<obs::Registry>()) {
  mounts_.emplace("/", Mount{std::make_shared<MemFs>(), MountOptions{}});
  obs_.lookup_total = metrics_->counter("vfs/lookup_total");
  obs_.read_total = metrics_->counter("vfs/read_total");
  obs_.write_total = metrics_->counter("vfs/write_total");
  obs_.metadata_total = metrics_->counter("vfs/metadata_total");
  obs_.dcache_hit_total = metrics_->counter("vfs/dcache_hit_total");
  obs_.dcache_miss_total = metrics_->counter("vfs/dcache_miss_total");
  obs_.op_ns = metrics_->histogram("vfs/op_ns");
}

void Vfs::count_op(OpKind kind) {
  counters_.total.fetch_add(1, std::memory_order_relaxed);
  switch (kind) {
    case OpKind::read:
      counters_.reads.fetch_add(1, std::memory_order_relaxed);
      obs_.read_total->add();
      break;
    case OpKind::write:
      counters_.writes.fetch_add(1, std::memory_order_relaxed);
      obs_.write_total->add();
      break;
    case OpKind::metadata:
      counters_.metadata.fetch_add(1, std::memory_order_relaxed);
      obs_.metadata_total->add();
      break;
    case OpKind::lookup:
      counters_.lookups.fetch_add(1, std::memory_order_relaxed);
      obs_.lookup_total->add();
      break;
  }
}

void Vfs::reset_counters() {
  counters_.total = 0;
  counters_.reads = 0;
  counters_.writes = 0;
  counters_.metadata = 0;
  counters_.lookups = 0;
}

Status Vfs::mount(const std::string& path, FilesystemPtr fs,
                  MountOptions options) {
  if (!fs) return make_error_code(Errc::invalid_argument);
  std::string key = normalize_path(path);
  if (key != "/") {
    // The mount point must exist and be a directory; key the table on the
    // *resolved* logical path so "/a/../mnt" and "/mnt" are one mount, not
    // two, and later mount-point checks agree with the resolver.
    auto target = resolve(key, Credentials::root());
    if (!target) return target.error();
    auto st = target->fs->getattr(target->node);
    if (!st) return st.error();
    if (!st->is_dir()) return make_error_code(Errc::not_dir);
    key = target->logical.empty() ? "/" : target->logical;
  }
  dbg::UniqueLock lock(mounts_mu_);
  auto [it, inserted] = mounts_.emplace(key, Mount{std::move(fs), options});
  if (!inserted) return make_error_code(Errc::busy);
  mount_gen_.fetch_add(1, std::memory_order_release);
  return ok_status();
}

Status Vfs::umount(const std::string& path) {
  std::string key = normalize_path(path);
  if (key != "/") {
    // Canonicalize the same way mount() keyed it (resolving the mount
    // point crosses into the mounted fs, so `logical` IS the mount key).
    if (auto target = resolve(key, Credentials::root()))
      key = target->logical.empty() ? "/" : target->logical;
  }
  if (key == "/") return make_error_code(Errc::busy);
  dbg::UniqueLock lock(mounts_mu_);
  auto it = mounts_.find(key);
  if (it == mounts_.end()) return make_error_code(Errc::not_found);
  // Refuse when another mount lives underneath this one.
  std::string prefix = key + "/";
  for (const auto& [mount_path, mount] : mounts_)
    if (starts_with(mount_path, prefix))
      return make_error_code(Errc::busy);
  mounts_.erase(it);
  mount_gen_.fetch_add(1, std::memory_order_release);
  return ok_status();
}

FilesystemPtr Vfs::mounted_at(const std::string& path) const {
  dbg::SharedLock lock(mounts_mu_);
  auto it = mounts_.find(normalize_path(path));
  return it == mounts_.end() ? nullptr : it->second.fs;
}

bool Vfs::is_mount_point(const std::string& logical_path) const {
  dbg::SharedLock lock(mounts_mu_);
  return mounts_.count(logical_path) != 0;
}

struct Vfs::Frame {
  FilesystemPtr fs;
  NodeId node;
  std::string logical;  // full logical path of this directory ("" = /)
  bool read_only;
};

// Walks `components` on top of `stack`.  `base_depth` is the ".." floor:
// the walk can never pop below it, and absolute symlink targets re-anchor
// there (this is what confines a Namespace to its subtree).  When `deps`
// is non-null, every filesystem entered mid-walk is recorded with its
// change_gen() captured before any of its state is read.
Result<Vfs::Resolved> Vfs::walk_components(std::vector<Frame>& stack,
                                           std::deque<std::string>& components,
                                           const Credentials& creds,
                                           bool follow_final,
                                           std::size_t base_depth,
                                           int& symlinks_left,
                                           DcacheDeps* deps) {
  while (!components.empty()) {
    std::string comp = std::move(components.front());
    components.pop_front();

    if (comp == "..") {
      if (stack.size() > base_depth) stack.pop_back();
      continue;
    }

    Frame& cur = stack.back();
    auto cur_attr = cur.fs->getattr(cur.node);
    if (!cur_attr) return cur_attr.error();
    if (!cur_attr->is_dir()) return Errc::not_dir;
    if (auto st = cur.fs->access(cur.node, 1 /*execute*/, creds); st)
      return st;

    count_op(OpKind::lookup);
    auto child = cur.fs->lookup(cur.node, comp);
    if (!child) return child.error();

    auto child_attr = cur.fs->getattr(*child);
    if (!child_attr) return child_attr.error();

    bool is_final = components.empty();
    if (child_attr->is_symlink() && (!is_final || follow_final)) {
      if (--symlinks_left < 0) return Errc::symlink_loop;
      auto target = cur.fs->readlink(*child);
      if (!target) return target.error();
      if (starts_with(*target, "/")) stack.resize(base_depth);
      auto target_comps = split_nonempty(normalize_path(*target), '/');
      for (auto it = target_comps.rbegin(); it != target_comps.rend(); ++it)
        components.push_front(std::move(*it));
      continue;
    }

    std::string logical = cur.logical + "/" + comp;
    {
      dbg::SharedLock lock(mounts_mu_);
      auto mount_it = mounts_.find(logical);
      if (mount_it != mounts_.end()) {
        if (deps)
          deps->emplace_back(mount_it->second.fs,
                             mount_it->second.fs->change_gen());
        stack.push_back(Frame{mount_it->second.fs,
                              mount_it->second.fs->root(), logical,
                              mount_it->second.options.read_only});
        continue;
      }
    }
    stack.push_back(Frame{cur.fs, *child, logical, cur.read_only});
  }
  const Frame& top = stack.back();
  return Resolved{top.fs, top.node, top.read_only, top.logical};
}

std::string Vfs::dcache_key(const std::string& norm_root,
                            const std::string& norm_path, bool follow_final,
                            const Credentials& creds) {
  // Credentials qualify the key: the walk checks execute permission on
  // every component, so one caller's successful resolution proves nothing
  // for another.
  std::string key;
  key.reserve(norm_root.size() + norm_path.size() + 32);
  key += norm_root;
  key += '\n';
  key += norm_path;
  key += '\n';
  key += follow_final ? '1' : '0';
  key += '\n';
  key += std::to_string(creds.uid);
  key += ':';
  key += std::to_string(creds.gid);
  for (auto g : creds.groups) {
    key += ',';
    key += std::to_string(g);
  }
  return key;
}

Result<Vfs::Resolved> Vfs::resolve(std::string_view path,
                                   const Credentials& creds, bool follow_final,
                                   const std::string& root) {
  std::string norm_root = normalize_path(root);
  std::string norm = normalize_path(path);
  std::string key = dcache_key(norm_root, norm, follow_final, creds);
  // Capture the mount generation before consulting anything: a mount that
  // lands mid-walk invalidates, never validates.
  std::uint64_t mount_gen = mount_gen_.load(std::memory_order_acquire);
  {
    dbg::SharedLock lock(dcache_mu_);
    auto it = dcache_.find(key);
    if (it != dcache_.end() && it->second.mount_gen == mount_gen) {
      bool fresh = true;
      for (const auto& [fs, gen] : it->second.deps) {
        if (fs->change_gen() != gen) {
          fresh = false;
          break;
        }
      }
      if (fresh) {
        // One lookup per hit keeps the syscall counters monotonic and the
        // cached path visibly cheaper than the walked one.
        count_op(OpKind::lookup);
        obs_.dcache_hit_total->add();
        return it->second.resolved;
      }
    }
  }
  obs_.dcache_miss_total->add();

  DcacheDeps deps;
  std::vector<Frame> stack;
  {
    dbg::SharedLock lock(mounts_mu_);
    const Mount& m = mounts_.at("/");
    deps.emplace_back(m.fs, m.fs->change_gen());
    stack.push_back(Frame{m.fs, m.fs->root(), "", m.options.read_only});
  }
  int symlinks_left = kMaxSymlinkDepth;

  // Stage 1: anchor at the namespace root (always following symlinks).
  if (norm_root != "/") {
    std::deque<std::string> root_comps;
    for (auto& comp : split_nonempty(norm_root, '/'))
      root_comps.push_back(std::move(comp));
    auto anchored = walk_components(stack, root_comps, creds, true, 1,
                                    symlinks_left, &deps);
    if (!anchored) return anchored.error();
    auto attr = anchored->fs->getattr(anchored->node);
    if (!attr) return attr.error();
    if (!attr->is_dir()) return Errc::not_dir;
  }
  std::size_t base_depth = stack.size();

  // Stage 2: walk the user-supplied path, confined above base_depth.
  std::deque<std::string> components;
  for (auto& comp : split_nonempty(norm, '/'))
    components.push_back(std::move(comp));
  auto resolved = walk_components(stack, components, creds, follow_final,
                                  base_depth, symlinks_left, &deps);
  if (!resolved) return resolved;  // negative results are never cached

  bool cacheable = true;
  for (const auto& [fs, gen] : deps) {
    if (gen == kUncacheableGen) {
      cacheable = false;
      break;
    }
  }
  if (cacheable) {
    dbg::UniqueLock lock(dcache_mu_);
    if (dcache_.size() >= kDcacheCap) dcache_.clear();
    dcache_[std::move(key)] = DentryEntry{*resolved, std::move(deps),
                                          mount_gen};
  }
  return resolved;
}

Result<Vfs::Resolved> Vfs::resolve_parent(std::string_view path,
                                          const Credentials& creds,
                                          std::string* leaf,
                                          const std::string& root) {
  std::string norm = normalize_path(path);
  if (norm == "/") return Errc::busy;  // the root has no parent entry
  auto slash = norm.rfind('/');
  std::string dir = slash == 0 ? "/" : norm.substr(0, slash);
  *leaf = norm.substr(slash + 1);
  if (*leaf == "..") return Errc::invalid_argument;
  return resolve(dir, creds, true, root);
}

Result<std::shared_ptr<FileHandle>> Vfs::open(std::string_view path, int flags,
                                              std::uint32_t mode,
                                              const Credentials& creds,
                                              const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::metadata);
  namespace of = open_flags;
  int acc = flags & of::accmode;
  bool want_read = acc == of::read_only || acc == of::read_write;
  bool want_write = acc == of::write_only || acc == of::read_write ||
                    (flags & (of::truncate | of::append));

  auto resolved = resolve(path, creds, true, root);
  if (!resolved) {
    if (resolved.error() == make_error_code(Errc::not_found) &&
        (flags & of::create)) {
      std::string leaf;
      auto parent = resolve_parent(path, creds, &leaf, root);
      if (!parent) return parent.error();
      if (parent->read_only) return Errc::read_only;
      auto node = parent->fs->create(parent->node, leaf, mode, creds);
      if (!node) return node.error();
      return std::make_shared<FileHandle>(parent->fs, *node, flags, creds,
                                          this);
    }
    return resolved.error();
  }
  if ((flags & of::create) && (flags & of::excl)) return Errc::exists;

  auto st = resolved->fs->getattr(resolved->node);
  if (!st) return st.error();
  if (st->is_dir()) return Errc::is_dir;
  if (want_write && resolved->read_only) return Errc::read_only;

  std::uint8_t want = 0;
  if (want_read) want |= 4;
  if (want_write) want |= 2;
  if (want)
    if (auto ec = resolved->fs->access(resolved->node, want, creds); ec)
      return ec;

  if (flags & of::truncate)
    if (auto ec = resolved->fs->truncate(resolved->node, 0, creds); ec)
      return ec;

  return std::make_shared<FileHandle>(resolved->fs, resolved->node, flags,
                                      creds, this);
}

Result<std::string> Vfs::read_file(std::string_view path,
                                   const Credentials& creds,
                                   const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::read);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  return resolved->fs->read(resolved->node, 0,
                            std::numeric_limits<std::uint64_t>::max(), creds);
}

Status Vfs::write_file(std::string_view path, std::string_view data,
                       const Credentials& creds, const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::write);
  // A path write with no active context is pipeline ingress: a user (or
  // an app outside any traced scope) pushing new intent into the FS.
  // Minting here makes the whole downstream chain — watch emit, driver
  // commit, OpenFlow egress — children of this write.
  obs::TraceRef ingress;
  if (!obs::current_trace() && obs::tracer().enabled())
    ingress = obs::tracer().mint("vfs", "write", std::string(path));
  obs::TraceScope trace_scope(ingress);
  // Deliberately NOT open(O_TRUNC): that truncates in one FS op and writes
  // in a second, leaving a window where concurrent readers see an empty
  // file.  replace() commits the new content in a single step.
  auto handle = open(path, open_flags::write_only | open_flags::create,
                     0644, creds, root);
  if (!handle) return handle.error();
  auto written = (*handle)->replace(data);
  return written ? ok_status() : written.error();
}

Status Vfs::append_file(std::string_view path, std::string_view data,
                        const Credentials& creds, const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::write);
  auto handle = open(path,
                     open_flags::write_only | open_flags::create |
                         open_flags::append,
                     0644, creds, root);
  if (!handle) return handle.error();
  auto written = (*handle)->write(data);
  return written ? ok_status() : written.error();
}

Result<Stat> Vfs::stat(std::string_view path, const Credentials& creds,
                       const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  return resolved->fs->getattr(resolved->node);
}

Result<Stat> Vfs::lstat(std::string_view path, const Credentials& creds,
                        const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, false, root);
  if (!resolved) return resolved.error();
  return resolved->fs->getattr(resolved->node);
}

Result<std::vector<DirEntry>> Vfs::readdir(std::string_view path,
                                           const Credentials& creds,
                                           const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  if (auto ec = resolved->fs->access(resolved->node, 4, creds); ec) return ec;
  return resolved->fs->readdir(resolved->node);
}

Status Vfs::mkdir(std::string_view path, std::uint32_t mode,
                  const Credentials& creds, const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::write);
  // Ingress like write_file: `mkdir /net/.../flows/f` is how a flow is
  // born, and in a create-then-commit burst the driver dedups the whole
  // burst onto the `created` event — the ref minted here is the one that
  // survives onto the FLOW_MOD train.
  obs::TraceRef ingress;
  if (!obs::current_trace() && obs::tracer().enabled())
    ingress = obs::tracer().mint("vfs", "mkdir", std::string(path));
  obs::TraceScope trace_scope(ingress);
  std::string leaf;
  auto parent = resolve_parent(path, creds, &leaf, root);
  if (!parent) return parent.error();
  if (parent->read_only) return make_error_code(Errc::read_only);
  auto node = parent->fs->mkdir(parent->node, leaf, mode, creds);
  return node ? ok_status() : node.error();
}

Status Vfs::mkdir_p(std::string_view path, std::uint32_t mode,
                    const Credentials& creds, const std::string& root) {
  std::string norm = normalize_path(path);
  auto comps = split_nonempty(norm, '/');
  std::string current;
  for (const auto& comp : comps) {
    current += '/';
    current += comp;
    auto st = stat(current, creds, root);
    if (st) {
      if (!st->is_dir()) return make_error_code(Errc::not_dir);
      continue;
    }
    if (auto ec = mkdir(current, mode, creds, root);
        ec && ec != make_error_code(Errc::exists))
      return ec;
  }
  return ok_status();
}

Status Vfs::unlink(std::string_view path, const Credentials& creds,
                   const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::write);
  std::string leaf;
  auto parent = resolve_parent(path, creds, &leaf, root);
  if (!parent) return parent.error();
  if (parent->read_only) return make_error_code(Errc::read_only);
  // Mount-point check on the *resolved* logical path: a lexical check
  // misses "/a/../mnt" and symlinked parents, which name the same entry.
  if (is_mount_point(parent->logical + "/" + leaf))
    return make_error_code(Errc::busy);
  return parent->fs->unlink(parent->node, leaf, creds);
}

Status Vfs::rmdir(std::string_view path, const Credentials& creds,
                  const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::write);
  std::string leaf;
  auto parent = resolve_parent(path, creds, &leaf, root);
  if (!parent) return parent.error();
  if (parent->read_only) return make_error_code(Errc::read_only);
  if (is_mount_point(parent->logical + "/" + leaf))
    return make_error_code(Errc::busy);
  return parent->fs->rmdir(parent->node, leaf, creds);
}

Status Vfs::remove_all(std::string_view path, const Credentials& creds,
                       const std::string& root) {
  // Ingress for deletions: `rm` of a flow dir drives a delete FLOW_MOD
  // through the same pipeline a commit does.
  obs::TraceRef ingress;
  if (!obs::current_trace() && obs::tracer().enabled())
    ingress = obs::tracer().mint("vfs", "remove", std::string(path));
  obs::TraceScope trace_scope(ingress);
  auto st = lstat(path, creds, root);
  if (!st) return st.error();
  if (st->is_dir()) {
    auto entries = readdir(path, creds, root);
    if (!entries) return entries.error();
    for (const auto& entry : *entries) {
      std::string child = std::string(path);
      if (child.empty() || child.back() != '/') child += '/';
      child += entry.name;
      if (auto ec = remove_all(child, creds, root); ec) return ec;
    }
    return rmdir(path, creds, root);
  }
  return unlink(path, creds, root);
}

Status Vfs::rename(std::string_view from, std::string_view to,
                   const Credentials& creds, const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::write);
  std::string from_leaf, to_leaf;
  auto from_parent = resolve_parent(from, creds, &from_leaf, root);
  if (!from_parent) return from_parent.error();
  auto to_parent = resolve_parent(to, creds, &to_leaf, root);
  if (!to_parent) return to_parent.error();
  if (is_mount_point(from_parent->logical + "/" + from_leaf) ||
      is_mount_point(to_parent->logical + "/" + to_leaf))
    return make_error_code(Errc::busy);
  if (from_parent->fs.get() != to_parent->fs.get())
    return make_error_code(Errc::cross_device);
  if (from_parent->read_only || to_parent->read_only)
    return make_error_code(Errc::read_only);
  return from_parent->fs->rename(from_parent->node, from_leaf,
                                 to_parent->node, to_leaf, creds);
}

Status Vfs::symlink(std::string_view target, std::string_view linkpath,
                    const Credentials& creds, const std::string& root) {
  count_op(OpKind::write);
  std::string leaf;
  auto parent = resolve_parent(linkpath, creds, &leaf, root);
  if (!parent) return parent.error();
  if (parent->read_only) return make_error_code(Errc::read_only);
  auto node =
      parent->fs->symlink(parent->node, leaf, std::string(target), creds);
  return node ? ok_status() : node.error();
}

Result<std::string> Vfs::readlink(std::string_view path,
                                  const Credentials& creds,
                                  const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, false, root);
  if (!resolved) return resolved.error();
  return resolved->fs->readlink(resolved->node);
}

Status Vfs::link(std::string_view existing, std::string_view linkpath,
                 const Credentials& creds, const std::string& root) {
  count_op(OpKind::write);
  auto target = resolve(existing, creds, true, root);
  if (!target) return target.error();
  std::string leaf;
  auto parent = resolve_parent(linkpath, creds, &leaf, root);
  if (!parent) return parent.error();
  if (parent->fs.get() != target->fs.get())
    return make_error_code(Errc::cross_device);
  if (parent->read_only) return make_error_code(Errc::read_only);
  return parent->fs->link(target->node, parent->node, leaf, creds);
}

Status Vfs::chmod(std::string_view path, std::uint32_t mode,
                  const Credentials& creds, const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  if (resolved->read_only) return make_error_code(Errc::read_only);
  return resolved->fs->chmod(resolved->node, mode, creds);
}

Status Vfs::chown(std::string_view path, Uid uid, Gid gid,
                  const Credentials& creds, const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  if (resolved->read_only) return make_error_code(Errc::read_only);
  return resolved->fs->chown(resolved->node, uid, gid, creds);
}

Status Vfs::truncate(std::string_view path, std::uint64_t size,
                     const Credentials& creds, const std::string& root) {
  OpTimer timer(obs_.op_ns);
  count_op(OpKind::write);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  if (resolved->read_only) return make_error_code(Errc::read_only);
  return resolved->fs->truncate(resolved->node, size, creds);
}

Status Vfs::setxattr(std::string_view path, const std::string& name,
                     std::vector<std::uint8_t> value, const Credentials& creds,
                     const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  if (resolved->read_only) return make_error_code(Errc::read_only);
  return resolved->fs->setxattr(resolved->node, name, std::move(value), creds);
}

Result<std::vector<std::uint8_t>> Vfs::getxattr(std::string_view path,
                                                const std::string& name,
                                                const Credentials& creds,
                                                const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  return resolved->fs->getxattr(resolved->node, name);
}

Result<std::vector<std::string>> Vfs::listxattr(std::string_view path,
                                                const Credentials& creds,
                                                const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  return resolved->fs->listxattr(resolved->node);
}

Status Vfs::removexattr(std::string_view path, const std::string& name,
                        const Credentials& creds, const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  if (resolved->read_only) return make_error_code(Errc::read_only);
  return resolved->fs->removexattr(resolved->node, name, creds);
}

Status Vfs::set_acl(std::string_view path, const Acl& acl,
                    const Credentials& creds, const std::string& root) {
  if (auto ec = acl.validate(); ec) return ec;
  return setxattr(path, kAclXattr, acl.encode(), creds, root);
}

Result<Acl> Vfs::get_acl(std::string_view path, const Credentials& creds,
                         const std::string& root) {
  auto raw = getxattr(path, kAclXattr, creds, root);
  if (!raw) return raw.error();
  return Acl::decode(*raw);
}

Status Vfs::access(std::string_view path, std::uint8_t want,
                   const Credentials& creds, const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  return resolved->fs->access(resolved->node, want, creds);
}

Result<std::shared_ptr<WatchHandle>> Vfs::watch(std::string_view path,
                                                std::uint32_t mask,
                                                WatchQueuePtr queue,
                                                const Credentials& creds,
                                                const std::string& root) {
  count_op(OpKind::metadata);
  auto resolved = resolve(path, creds, true, root);
  if (!resolved) return resolved.error();
  auto id = resolved->fs->watch(resolved->node, mask, std::move(queue));
  if (!id) return id.error();
  return std::make_shared<WatchHandle>(resolved->fs, *id);
}

// --- FileHandle -------------------------------------------------------------

FileHandle::FileHandle(FilesystemPtr fs, NodeId node, int flags,
                       Credentials creds, Vfs* vfs)
    : fs_(std::move(fs)), node_(node), flags_(flags), creds_(std::move(creds)),
      vfs_(vfs) {}

bool FileHandle::readable() const noexcept {
  int acc = flags_ & open_flags::accmode;
  return acc == open_flags::read_only || acc == open_flags::read_write;
}

bool FileHandle::writable() const noexcept {
  int acc = flags_ & open_flags::accmode;
  return acc == open_flags::write_only || acc == open_flags::read_write;
}

Result<std::string> FileHandle::read(std::uint64_t size) {
  if (!readable()) return Errc::bad_handle;
  auto data = fs_->read(node_, offset_, size, creds_);
  if (data) offset_ += data->size();
  return data;
}

Result<std::uint64_t> FileHandle::write(std::string_view data) {
  if (!writable()) return Errc::bad_handle;
  if (flags_ & open_flags::append) {
    auto st = fs_->getattr(node_);
    if (!st) return st.error();
    offset_ = st->size;
  }
  auto n = fs_->write(node_, offset_, data, creds_);
  if (n) offset_ += *n;
  return n;
}

Result<std::uint64_t> FileHandle::replace(std::string_view data) {
  if (!writable()) return Errc::bad_handle;
  auto n = fs_->replace(node_, data, creds_);
  if (n) offset_ = *n;
  return n;
}

Result<std::string> FileHandle::pread(std::uint64_t offset,
                                      std::uint64_t size) {
  if (!readable()) return Errc::bad_handle;
  return fs_->read(node_, offset, size, creds_);
}

Result<std::uint64_t> FileHandle::pwrite(std::uint64_t offset,
                                         std::string_view data) {
  if (!writable()) return Errc::bad_handle;
  return fs_->write(node_, offset, data, creds_);
}

Result<Stat> FileHandle::stat() { return fs_->getattr(node_); }

// --- Namespace ---------------------------------------------------------------

Namespace::Namespace(std::shared_ptr<Vfs> vfs, std::string root,
                     Credentials creds)
    : vfs_(std::move(vfs)), root_(normalize_path(root)),
      creds_(std::move(creds)) {}

Result<std::string> Namespace::read_file(std::string_view path) {
  return vfs_->read_file(path, creds_, root_);
}
Status Namespace::write_file(std::string_view path, std::string_view data) {
  return vfs_->write_file(path, data, creds_, root_);
}
Status Namespace::append_file(std::string_view path, std::string_view data) {
  return vfs_->append_file(path, data, creds_, root_);
}
Result<Stat> Namespace::stat(std::string_view path) {
  return vfs_->stat(path, creds_, root_);
}
Result<std::vector<DirEntry>> Namespace::readdir(std::string_view path) {
  return vfs_->readdir(path, creds_, root_);
}
Status Namespace::mkdir(std::string_view path, std::uint32_t mode) {
  return vfs_->mkdir(path, mode, creds_, root_);
}
Status Namespace::unlink(std::string_view path) {
  return vfs_->unlink(path, creds_, root_);
}
Status Namespace::rmdir(std::string_view path) {
  return vfs_->rmdir(path, creds_, root_);
}
Status Namespace::rename(std::string_view from, std::string_view to) {
  return vfs_->rename(from, to, creds_, root_);
}
Status Namespace::symlink(std::string_view target, std::string_view linkpath) {
  return vfs_->symlink(target, linkpath, creds_, root_);
}
Result<std::string> Namespace::readlink(std::string_view path) {
  return vfs_->readlink(path, creds_, root_);
}
Result<std::shared_ptr<WatchHandle>> Namespace::watch(std::string_view path,
                                                      std::uint32_t mask,
                                                      WatchQueuePtr queue) {
  return vfs_->watch(path, mask, std::move(queue), creds_, root_);
}

}  // namespace yanc::vfs
