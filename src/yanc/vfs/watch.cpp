#include "yanc/vfs/watch.hpp"

#include <algorithm>

namespace yanc::vfs {

void WatchQueue::push(Event e) {
  bool enqueued = false;
  {
    dbg::LockGuard lock(mu_);
    if (coalesce_ && e.mask == event::modified && !events_.empty()) {
      // Merge only into the tail, and only modified-into-modified for the
      // same path: any interleaved event (a delete, a create, a different
      // path) sits at the tail instead and blocks the merge, so ordering
      // and terminal events survive coalescing by construction.
      Event& tail = events_.back();
      if (tail.mask == event::modified && tail.node == e.node &&
          tail.name == e.name) {
        if (coalesce_metric_) coalesce_metric_->add();
        // The merged tail must keep the causal refs it absorbs, or the
        // coalesced traces lose their chain here.  The tail's (earlier)
        // trace_ts_ns stays: queue-wait is measured from the oldest
        // absorbed work.  Bounded so a pathological burst of distinct
        // traces onto one path cannot grow the event without limit.
        if (!e.trace.empty() && tail.trace.size() < kMaxTraceRefs) {
          std::size_t room = kMaxTraceRefs - tail.trace.size();
          tail.trace.insert(
              tail.trace.end(), e.trace.begin(),
              e.trace.begin() +
                  static_cast<std::ptrdiff_t>(std::min(room, e.trace.size())));
          if (tail.trace_ts_ns == 0) tail.trace_ts_ns = e.trace_ts_ns;
        }
        return;  // the queued tail already announces this state change
      }
    }
    if (events_.size() >= capacity_) {
      if (drop_metric_) drop_metric_->add();
      if (!overflow_pending_) {
        overflow_pending_ = true;
        // Replace the tail with a single overflow marker, like inotify's
        // IN_Q_OVERFLOW: the consumer learns it must rescan.  The marker
        // is an event like any other: it must update the depth gauge and
        // wake a blocked consumer, or a slow reader parked in pop_wait
        // sleeps through the very notification telling it to catch up.
        events_.push_back(Event{event::overflow, e.node, {}, 0});
        enqueued = true;
      }
    } else {
      events_.push_back(std::move(e));
      enqueued = true;
    }
    if (enqueued && depth_metric_)
      depth_metric_->set(static_cast<std::int64_t>(events_.size()));
  }
  if (enqueued) cv_.notify_one();
}

std::optional<Event> WatchQueue::try_pop() {
  dbg::LockGuard lock(mu_);
  if (events_.empty()) return std::nullopt;
  Event e = std::move(events_.front());
  events_.pop_front();
  if (events_.empty()) overflow_pending_ = false;
  if (depth_metric_)
    depth_metric_->set(static_cast<std::int64_t>(events_.size()));
  return e;
}

std::optional<Event> WatchQueue::pop_wait(std::chrono::milliseconds timeout) {
  // Absolute deadline computed once: however many times the wait wakes
  // (notified for events another consumer won, or spuriously), the caller
  // never waits longer than `timeout` from the moment of the call.
  auto deadline = std::chrono::steady_clock::now() + timeout;
  dbg::UniqueLock lock(mu_);
  if (!cv_.wait_until(lock, deadline, [&] { return !events_.empty(); }))
    return std::nullopt;
  Event e = std::move(events_.front());
  events_.pop_front();
  if (events_.empty()) overflow_pending_ = false;
  if (depth_metric_)
    depth_metric_->set(static_cast<std::int64_t>(events_.size()));
  return e;
}

std::size_t WatchQueue::drain_locked(std::vector<Event>& out,
                                     std::size_t max) {
  std::size_t n = std::min(max, events_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(events_.front()));
    events_.pop_front();
  }
  if (events_.empty()) overflow_pending_ = false;
  if (n && depth_metric_)
    depth_metric_->set(static_cast<std::int64_t>(events_.size()));
  return n;
}

std::size_t WatchQueue::try_pop_batch(std::vector<Event>& out,
                                      std::size_t max) {
  dbg::LockGuard lock(mu_);
  return drain_locked(out, max);
}

std::vector<Event> WatchQueue::pop_wait_batch(
    std::size_t max, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  std::vector<Event> out;
  dbg::UniqueLock lock(mu_);
  if (!cv_.wait_until(lock, deadline, [&] { return !events_.empty(); }))
    return out;  // timeout: empty
  drain_locked(out, max);
  return out;
}

void WatchQueue::set_coalescing(bool enabled) {
  dbg::LockGuard lock(mu_);
  coalesce_ = enabled;
}

std::vector<Event> WatchQueue::drain() {
  dbg::LockGuard lock(mu_);
  std::vector<Event> out(events_.begin(), events_.end());
  events_.clear();
  overflow_pending_ = false;
  if (depth_metric_) depth_metric_->set(0);
  return out;
}

void WatchQueue::bind_metrics(obs::Gauge* depth, obs::Counter* drops,
                              obs::Counter* coalesced) {
  dbg::LockGuard lock(mu_);
  depth_metric_ = depth;
  drop_metric_ = drops;
  coalesce_metric_ = coalesced;
  if (depth_metric_)
    depth_metric_->set(static_cast<std::int64_t>(events_.size()));
}

std::size_t WatchQueue::size() const {
  dbg::LockGuard lock(mu_);
  return events_.size();
}

bool WatchQueue::overflowed() const {
  dbg::LockGuard lock(mu_);
  return overflow_pending_;
}

WatchRegistry::WatchId WatchRegistry::add(NodeId node, std::uint32_t mask,
                                          WatchQueuePtr queue) {
  dbg::LockGuard lock(mu_);
  WatchId id = next_id_++;
  subs_.emplace(id, Subscription{node, mask, std::move(queue)});
  by_node_[node].push_back(id);
  return id;
}

void WatchRegistry::remove(WatchId id) {
  dbg::LockGuard lock(mu_);
  auto it = subs_.find(id);
  if (it == subs_.end()) return;
  auto node_it = by_node_.find(it->second.node);
  if (node_it != by_node_.end()) {
    auto& ids = node_it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) by_node_.erase(node_it);
  }
  subs_.erase(it);
}

void WatchRegistry::drop_node(NodeId node) {
  dbg::LockGuard lock(mu_);
  auto node_it = by_node_.find(node);
  if (node_it == by_node_.end()) return;
  for (WatchId id : node_it->second) subs_.erase(id);
  by_node_.erase(node_it);
}

void WatchRegistry::emit(NodeId node, std::uint32_t mask,
                         const std::string& name, std::uint32_t cookie) {
  // Snapshot matching queues under the lock, push outside it so a slow
  // consumer cannot stall registry mutation.
  std::vector<WatchQueuePtr> targets;
  {
    dbg::LockGuard lock(mu_);
    auto node_it = by_node_.find(node);
    if (node_it == by_node_.end()) return;
    for (WatchId id : node_it->second) {
      const auto& sub = subs_.at(id);
      if (sub.mask & mask) targets.push_back(sub.queue);
    }
  }
  Event base{mask, node, name, cookie};
  // Stamp the emitting thread's causal context.  MemFs's MutationScope
  // defers emission, but the deferral still runs on the mutating thread
  // before the VFS call returns, so the ingress TraceScope is still
  // active here — one stamp point covers every filesystem.
  if (auto ref = obs::current_trace()) {
    base.trace.push_back(ref);
    base.trace_ts_ns = obs::Tracer::now_ns();
  }
  for (auto& q : targets) q->push(base);
}

bool WatchRegistry::watched(NodeId node) const {
  dbg::LockGuard lock(mu_);
  return by_node_.count(node) != 0;
}

std::size_t WatchRegistry::watch_count() const {
  dbg::LockGuard lock(mu_);
  return subs_.size();
}

}  // namespace yanc::vfs
