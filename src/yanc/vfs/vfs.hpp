// Vfs: mount table, path resolution and the POSIX-flavoured call surface
// that applications use.
//
// Responsibilities (mirroring the kernel VFS the paper leans on):
//   - mounts: any Filesystem can be mounted at any directory; the yanc FS
//     mounts at /net, a ReplicatedFs can mount *underneath* it (§6), and a
//     ViewFs can mount a slice at /net/views/<v> for namespaced apps.
//   - path walking: component-wise lookup with symlink following (ELOOP
//     guard), ".." tracked through mount crossings, per-component execute
//     permission checks against the caller's Credentials.
//   - handles: open() returns a FileHandle implementing read/write with
//     O_APPEND/O_TRUNC semantics on top of the stateless Filesystem API.
//   - accounting: every public call increments an op counter; this is the
//     "system call" count that §8.1's performance argument is about, and
//     the benchmarks report it (EXP-1/2/3).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "yanc/dbg/lockdep.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/vfs/acl.hpp"
#include "yanc/vfs/filesystem.hpp"

namespace yanc::vfs {

struct MountOptions {
  bool read_only = false;
};

/// Cumulative operation counters (the simulated syscall count).
struct OpCounters {
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> metadata{0};  // stat/readdir/chmod/xattr/...
  std::atomic<std::uint64_t> lookups{0};   // per-component resolutions
};

class FileHandle;
class WatchHandle;

class Vfs {
 public:
  /// A fresh Vfs has an empty MemFs mounted at "/".
  Vfs();

  // --- mounts ----------------------------------------------------------
  [[nodiscard]] Status mount(const std::string& path, FilesystemPtr fs,
               MountOptions options = {});
  [[nodiscard]] Status umount(const std::string& path);
  /// The filesystem mounted exactly at `path` (not resolved), if any.
  FilesystemPtr mounted_at(const std::string& path) const;

  // --- resolution --------------------------------------------------------
  struct Resolved {
    FilesystemPtr fs;
    NodeId node = kInvalidNode;
    bool read_only = false;
    // Full logical (mount-table) path the walk ended at, with ".." and
    // symlinks already resolved ("" means "/").  This is the canonical key
    // for mount-point comparisons: lexical prefixes lie about paths that
    // reach a mount root via ".." or a symlink.
    std::string logical;
  };
  /// Resolves `path` to (filesystem, node).  `follow_final` controls
  /// whether a trailing symlink is followed (stat vs lstat).
  /// `root` confines resolution to a subtree (namespace support): ".."
  /// cannot escape it and absolute symlink targets re-anchor at it.
  Result<Resolved> resolve(std::string_view path, const Credentials& creds,
                           bool follow_final = true,
                           const std::string& root = "/");

  // --- file I/O -----------------------------------------------------------
  Result<std::shared_ptr<FileHandle>> open(std::string_view path, int flags,
                                           std::uint32_t mode,
                                           const Credentials& creds,
                                           const std::string& root = "/");
  /// Whole-file read.
  Result<std::string> read_file(std::string_view path,
                                const Credentials& creds = {},
                                const std::string& root = "/");
  /// Whole-file write: creates the file if absent, truncates otherwise.
  [[nodiscard]] Status write_file(std::string_view path, std::string_view data,
                    const Credentials& creds = {},
                    const std::string& root = "/");
  [[nodiscard]] Status append_file(std::string_view path, std::string_view data,
                     const Credentials& creds = {},
                     const std::string& root = "/");

  // --- namespace ops --------------------------------------------------------
  Result<Stat> stat(std::string_view path, const Credentials& creds = {},
                    const std::string& root = "/");
  Result<Stat> lstat(std::string_view path, const Credentials& creds = {},
                     const std::string& root = "/");
  Result<std::vector<DirEntry>> readdir(std::string_view path,
                                        const Credentials& creds = {},
                                        const std::string& root = "/");
  [[nodiscard]] Status mkdir(std::string_view path, std::uint32_t mode = 0755,
               const Credentials& creds = {}, const std::string& root = "/");
  /// mkdir -p: creates missing ancestors; EEXIST only if the final path
  /// exists and is not a directory.
  [[nodiscard]] Status mkdir_p(std::string_view path, std::uint32_t mode = 0755,
                 const Credentials& creds = {}, const std::string& root = "/");
  [[nodiscard]] Status unlink(std::string_view path, const Credentials& creds = {},
                const std::string& root = "/");
  [[nodiscard]] Status rmdir(std::string_view path, const Credentials& creds = {},
               const std::string& root = "/");
  /// rm -r: recursive removal (used by tests and the shell's `rm -r`).
  [[nodiscard]] Status remove_all(std::string_view path, const Credentials& creds = {},
                    const std::string& root = "/");
  [[nodiscard]] Status rename(std::string_view from, std::string_view to,
                const Credentials& creds = {}, const std::string& root = "/");
  [[nodiscard]] Status symlink(std::string_view target, std::string_view linkpath,
                 const Credentials& creds = {}, const std::string& root = "/");
  Result<std::string> readlink(std::string_view path,
                               const Credentials& creds = {},
                               const std::string& root = "/");
  [[nodiscard]] Status link(std::string_view existing, std::string_view linkpath,
              const Credentials& creds = {}, const std::string& root = "/");

  // --- metadata ------------------------------------------------------------
  [[nodiscard]] Status chmod(std::string_view path, std::uint32_t mode,
               const Credentials& creds = {}, const std::string& root = "/");
  [[nodiscard]] Status chown(std::string_view path, Uid uid, Gid gid,
               const Credentials& creds = {}, const std::string& root = "/");
  [[nodiscard]] Status truncate(std::string_view path, std::uint64_t size,
                  const Credentials& creds = {},
                  const std::string& root = "/");
  [[nodiscard]] Status setxattr(std::string_view path, const std::string& name,
                  std::vector<std::uint8_t> value,
                  const Credentials& creds = {},
                  const std::string& root = "/");
  Result<std::vector<std::uint8_t>> getxattr(std::string_view path,
                                             const std::string& name,
                                             const Credentials& creds = {},
                                             const std::string& root = "/");
  Result<std::vector<std::string>> listxattr(std::string_view path,
                                             const Credentials& creds = {},
                                             const std::string& root = "/");
  [[nodiscard]] Status removexattr(std::string_view path, const std::string& name,
                     const Credentials& creds = {},
                     const std::string& root = "/");

  /// ACL convenience: stores/reads the ACL via its system xattr.
  [[nodiscard]] Status set_acl(std::string_view path, const Acl& acl,
                 const Credentials& creds = {}, const std::string& root = "/");
  Result<Acl> get_acl(std::string_view path, const Credentials& creds = {},
                      const std::string& root = "/");

  /// access(2)-style probe.
  [[nodiscard]] Status access(std::string_view path, std::uint8_t want,
                const Credentials& creds = {}, const std::string& root = "/");

  // --- monitoring ------------------------------------------------------------
  /// Registers a watch on the node `path` resolves to.  The returned handle
  /// unregisters on destruction.
  Result<std::shared_ptr<WatchHandle>> watch(std::string_view path,
                                             std::uint32_t mask,
                                             WatchQueuePtr queue,
                                             const Credentials& creds = {},
                                             const std::string& root = "/");

  const OpCounters& counters() const noexcept { return counters_; }
  void reset_counters();

  /// The metrics registry every subsystem working over this Vfs shares
  /// (never null).  StatsFs materializes it at /yanc/.stats; drivers,
  /// netfs and the distributed layer register their own handles here.
  const std::shared_ptr<obs::Registry>& metrics() const noexcept {
    return metrics_;
  }

 private:
  struct Mount {
    FilesystemPtr fs;
    MountOptions options;
  };
  struct Frame;  // resolver walk frame (defined in vfs.cpp)

  /// Operation classes mirrored into both OpCounters (the syscall model
  /// the benchmarks read) and the obs registry (the /yanc/.stats surface).
  enum class OpKind { read, write, metadata, lookup };

  /// Filesystems a resolution read, each with its change_gen() captured at
  /// first visit — *before* any of its state was read, so a concurrent
  /// mutation can only make the cached entry look stale, never fresh.
  using DcacheDeps = std::vector<std::pair<FilesystemPtr, std::uint64_t>>;

  /// One resolution-cache entry: the answer plus everything needed to
  /// prove it is still the answer.
  struct DentryEntry {
    Resolved resolved;
    DcacheDeps deps;
    std::uint64_t mount_gen = 0;  // mount table unchanged since insert
  };

  static std::string dcache_key(const std::string& norm_root,
                                const std::string& norm_path,
                                bool follow_final, const Credentials& creds);

  Result<Resolved> walk_components(std::vector<Frame>& stack,
                                   std::deque<std::string>& components,
                                   const Credentials& creds, bool follow_final,
                                   std::size_t base_depth, int& symlinks_left,
                                   DcacheDeps* deps);
  Result<Resolved> resolve_parent(std::string_view path,
                                  const Credentials& creds, std::string* leaf,
                                  const std::string& root);
  bool is_mount_point(const std::string& logical_path) const;
  void count_op(OpKind kind);

  mutable dbg::SharedMutex<dbg::Rank::vfs_mounts> mounts_mu_;
  std::map<std::string, Mount> mounts_;  // resolved logical path -> mount
  // Bumped on every mount/umount; resolution-cache entries recorded under
  // an older generation are never returned.
  std::atomic<std::uint64_t> mount_gen_{1};

  // Resolution (dentry) cache: successful resolutions only, keyed by
  // (namespace root, normalized path, follow_final, credentials).  Capped;
  // cleared wholesale when full (entries revalidate cheaply, so churn is
  // benign).
  static constexpr std::size_t kDcacheCap = 4096;
  mutable dbg::SharedMutex<dbg::Rank::vfs_dcache> dcache_mu_;
  std::unordered_map<std::string, DentryEntry> dcache_;

  OpCounters counters_;
  std::shared_ptr<obs::Registry> metrics_;
  struct ObsHandles {
    obs::Counter* lookup_total;
    obs::Counter* read_total;
    obs::Counter* write_total;
    obs::Counter* metadata_total;
    obs::Counter* dcache_hit_total;
    obs::Counter* dcache_miss_total;
    obs::Histogram* op_ns;  // wall latency of public Vfs operations
  } obs_;
};

/// An open file: stateful offset + O_* semantics over the stateless
/// Filesystem API.
class FileHandle {
 public:
  FileHandle(FilesystemPtr fs, NodeId node, int flags, Credentials creds,
             Vfs* vfs);

  Result<std::string> read(std::uint64_t size);
  Result<std::uint64_t> write(std::string_view data);
  /// Atomically swaps in `data` as the whole file content (no intermediate
  /// truncated state is ever visible to readers).
  Result<std::uint64_t> replace(std::string_view data);
  Result<std::string> pread(std::uint64_t offset, std::uint64_t size);
  Result<std::uint64_t> pwrite(std::uint64_t offset, std::string_view data);
  Result<Stat> stat();
  void seek(std::uint64_t offset) { offset_ = offset; }
  std::uint64_t offset() const noexcept { return offset_; }
  NodeId node() const noexcept { return node_; }

 private:
  bool readable() const noexcept;
  bool writable() const noexcept;

  FilesystemPtr fs_;
  NodeId node_;
  int flags_;
  Credentials creds_;
  Vfs* vfs_;
  std::uint64_t offset_ = 0;
};

/// RAII watch registration.
class WatchHandle {
 public:
  WatchHandle(FilesystemPtr fs, WatchRegistry::WatchId id)
      : fs_(std::move(fs)), id_(id) {}
  ~WatchHandle() { fs_->unwatch(id_); }
  WatchHandle(const WatchHandle&) = delete;
  WatchHandle& operator=(const WatchHandle&) = delete;

 private:
  FilesystemPtr fs_;
  WatchRegistry::WatchId id_;
};

/// Normalizes a path: makes it absolute, squeezes slashes, resolves "."
/// lexically (".." is left for the resolver, which must follow symlinks).
std::string normalize_path(std::string_view path);

/// A Linux-mount-namespace stand-in (§5.3): the same Vfs seen through a
/// different root directory.  Applications given a Namespace cannot name,
/// and therefore cannot touch, anything outside their subtree — this is how
/// yanc isolates per-view applications.
class Namespace {
 public:
  Namespace(std::shared_ptr<Vfs> vfs, std::string root, Credentials creds);

  /// The process-visible API: identical shape to Vfs, paths interpreted
  /// inside the namespace root.
  Result<std::string> read_file(std::string_view path);
  [[nodiscard]] Status write_file(std::string_view path, std::string_view data);
  [[nodiscard]] Status append_file(std::string_view path, std::string_view data);
  Result<Stat> stat(std::string_view path);
  Result<std::vector<DirEntry>> readdir(std::string_view path);
  [[nodiscard]] Status mkdir(std::string_view path, std::uint32_t mode = 0755);
  [[nodiscard]] Status unlink(std::string_view path);
  [[nodiscard]] Status rmdir(std::string_view path);
  [[nodiscard]] Status rename(std::string_view from, std::string_view to);
  [[nodiscard]] Status symlink(std::string_view target, std::string_view linkpath);
  Result<std::string> readlink(std::string_view path);
  Result<std::shared_ptr<WatchHandle>> watch(std::string_view path,
                                             std::uint32_t mask,
                                             WatchQueuePtr queue);

  const std::string& root() const noexcept { return root_; }
  const Credentials& credentials() const noexcept { return creds_; }
  Vfs& vfs() noexcept { return *vfs_; }

 private:
  std::shared_ptr<Vfs> vfs_;
  std::string root_;
  Credentials creds_;
};

}  // namespace yanc::vfs
