// File-system monitoring, modelled on Linux inotify (paper §5.2).
//
// Applications create a WatchQueue, register it on nodes they care about
// (a flow's `version` file, the `switches/` directory, a packet-in event
// buffer), and consume Events.  Like inotify, queues are bounded: when a
// slow consumer falls behind, a single `overflow` event replaces the
// dropped tail, and applications are expected to rescan.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "yanc/dbg/lockdep.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/obs/tracer.hpp"
#include "yanc/vfs/types.hpp"

namespace yanc::vfs {

/// Event bit mask values (combinable).
namespace event {
inline constexpr std::uint32_t created = 1u << 0;   // child created in dir
inline constexpr std::uint32_t deleted = 1u << 1;   // child removed from dir
inline constexpr std::uint32_t modified = 1u << 2;  // file content changed
inline constexpr std::uint32_t attrib = 1u << 3;    // metadata/xattr changed
inline constexpr std::uint32_t moved_from = 1u << 4;
inline constexpr std::uint32_t moved_to = 1u << 5;
inline constexpr std::uint32_t delete_self = 1u << 6;
inline constexpr std::uint32_t move_self = 1u << 7;
inline constexpr std::uint32_t overflow = 1u << 8;  // queue overflowed
inline constexpr std::uint32_t all =
    created | deleted | modified | attrib | moved_from | moved_to |
    delete_self | move_self;
}  // namespace event

/// Cap on causal refs a single (possibly coalesced) event carries.
inline constexpr std::size_t kMaxTraceRefs = 16;

/// One notification.  For directory watches, `name` is the child entry the
/// event refers to; for watches on the node itself it is empty.  Rename
/// emits a moved_from/moved_to pair sharing a `cookie`.
struct Event {
  Event() = default;
  Event(std::uint32_t mask_bits, NodeId target, std::string child = {},
        std::uint32_t rename_cookie = 0)
      : mask(mask_bits), node(target), name(std::move(child)),
        cookie(rename_cookie) {}

  std::uint32_t mask = 0;
  NodeId node = kInvalidNode;  // the watched node the event fired on
  std::string name;
  std::uint32_t cookie = 0;

  // Causal contexts this event carries (empty when untraced).  Normally
  // one ref — the context active on the emitting thread — but an event
  // that coalescing merged keeps every ref it absorbed, so a batched
  // consumer can close a stage span for each trace in the batch.
  // `trace_ts_ns` is when the oldest carried ref was enqueued: the
  // consumer's (now - trace_ts_ns) is the event's queue-wait.
  std::vector<obs::TraceRef> trace;
  std::uint64_t trace_ts_ns = 0;

  bool is(std::uint32_t bit) const noexcept { return (mask & bit) != 0; }
};

/// Bounded MPMC event queue with inotify-style overflow semantics.
class WatchQueue {
 public:
  explicit WatchQueue(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Producer side (called by filesystems).  Never blocks: drops to a single
  /// overflow marker when full.
  void push(Event e);

  /// Non-blocking consume.
  std::optional<Event> try_pop();

  /// Blocking consume with timeout; nullopt on timeout.
  std::optional<Event> pop_wait(std::chrono::milliseconds timeout);

  /// Non-blocking bulk consume: appends up to `max` queued events to
  /// `out` (front first, so delivery order is unchanged) and returns how
  /// many were appended.  One lock round-trip however many events move.
  std::size_t try_pop_batch(std::vector<Event>& out, std::size_t max);

  /// Blocking bulk consume: waits until at least one event is queued (or
  /// the timeout expires — empty result), then drains up to `max`.
  std::vector<Event> pop_wait_batch(std::size_t max,
                                    std::chrono::milliseconds timeout);

  /// Drains everything currently queued.
  std::vector<Event> drain();

  /// Coalescing policy: when enabled, a push whose event is modified-only
  /// and whose (node, name) equals the queue's current *tail* event (also
  /// modified-only) merges into that tail instead of enqueuing.  Only the
  /// tail is ever merged into, so per-path ordering is untouched and a
  /// terminal event (deleted, delete_self, overflow — any non-modified
  /// mask) breaks adjacency: nothing ever coalesces across it.
  void set_coalescing(bool enabled);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  bool overflowed() const;

  /// Mirrors queue depth, dropped events, and coalesced merges into obs
  /// handles (any may be nullptr).  The owner decides the metric names.
  void bind_metrics(obs::Gauge* depth, obs::Counter* drops,
                    obs::Counter* coalesced = nullptr);

 private:
  /// Moves up to `max` events into `out`; caller holds mu_.
  std::size_t drain_locked(std::vector<Event>& out, std::size_t max);

  mutable dbg::Mutex<dbg::Rank::watch_queue> mu_;
  dbg::CondVar cv_;
  std::deque<Event> events_;
  std::size_t capacity_;
  bool overflow_pending_ = false;
  bool coalesce_ = false;
  obs::Gauge* depth_metric_ = nullptr;
  obs::Counter* drop_metric_ = nullptr;
  obs::Counter* coalesce_metric_ = nullptr;
};

using WatchQueuePtr = std::shared_ptr<WatchQueue>;

/// Registry of (node, mask, queue) subscriptions owned by a Filesystem.
/// Filesystems call emit() at each mutation point.
class WatchRegistry {
 public:
  /// Identifier for removing a subscription.
  using WatchId = std::uint64_t;

  WatchId add(NodeId node, std::uint32_t mask, WatchQueuePtr queue);
  void remove(WatchId id);
  /// Drops every subscription on `node` (used when a node is destroyed).
  void drop_node(NodeId node);

  /// Fans the event out to every queue watching `node` whose mask matches.
  void emit(NodeId node, std::uint32_t mask, const std::string& name = {},
            std::uint32_t cookie = 0);

  /// True if anyone watches this node (lets hot paths skip event building).
  bool watched(NodeId node) const;

  std::size_t watch_count() const;

 private:
  struct Subscription {
    NodeId node;
    std::uint32_t mask;
    WatchQueuePtr queue;
  };
  mutable dbg::Mutex<dbg::Rank::watch_registry> mu_;
  std::uint64_t next_id_ = 1;
  // watch id -> subscription; node -> watch ids (small fan-out expected)
  std::unordered_map<WatchId, Subscription> subs_;
  std::unordered_map<NodeId, std::vector<WatchId>> by_node_;
};

}  // namespace yanc::vfs
