// Core value types of the VFS layer: node identifiers, file types, mode
// bits, credentials, and stat results.  These mirror POSIX so that the yanc
// file system behaves the way the paper assumes a Linux VFS behaves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace yanc::vfs {

/// Inode number, unique within one Filesystem instance.  0 is invalid.
using NodeId = std::uint64_t;
inline constexpr NodeId kInvalidNode = 0;

enum class FileType : std::uint8_t { regular, directory, symlink };

/// POSIX permission bits (the low 12 bits of st_mode).
namespace mode {
inline constexpr std::uint32_t suid = 04000;
inline constexpr std::uint32_t sgid = 02000;
inline constexpr std::uint32_t sticky = 01000;
inline constexpr std::uint32_t rusr = 0400;
inline constexpr std::uint32_t wusr = 0200;
inline constexpr std::uint32_t xusr = 0100;
inline constexpr std::uint32_t rgrp = 0040;
inline constexpr std::uint32_t wgrp = 0020;
inline constexpr std::uint32_t xgrp = 0010;
inline constexpr std::uint32_t roth = 0004;
inline constexpr std::uint32_t woth = 0002;
inline constexpr std::uint32_t xoth = 0001;
inline constexpr std::uint32_t all = 07777;
}  // namespace mode

/// Access request bits for permission checks.
enum class Access : std::uint8_t { read = 4, write = 2, execute = 1 };

using Uid = std::uint32_t;
using Gid = std::uint32_t;

/// Identity under which an application performs file operations.  The paper
/// (§5.1) uses Unix permissions to protect switches and flows per-process;
/// Credentials is that process identity.
struct Credentials {
  Uid uid = 0;
  Gid gid = 0;
  std::vector<Gid> groups;  // supplementary groups

  bool is_root() const noexcept { return uid == 0; }
  bool in_group(Gid g) const noexcept {
    if (g == gid) return true;
    for (Gid s : groups)
      if (s == g) return true;
    return false;
  }

  static Credentials root() { return {}; }
  static Credentials user(Uid uid, Gid gid) { return {uid, gid, {}}; }
};

/// Result of stat(): metadata snapshot of one inode.
struct Stat {
  NodeId ino = kInvalidNode;
  FileType type = FileType::regular;
  std::uint32_t mode = 0;  // permission bits only
  Uid uid = 0;
  Gid gid = 0;
  std::uint32_t nlink = 0;
  std::uint64_t size = 0;     // bytes (files), entries (dirs)
  std::uint64_t version = 0;  // bumped on every content/metadata change
  std::uint64_t mtime_ns = 0;
  std::uint64_t ctime_ns = 0;

  bool is_dir() const noexcept { return type == FileType::directory; }
  bool is_file() const noexcept { return type == FileType::regular; }
  bool is_symlink() const noexcept { return type == FileType::symlink; }
};

/// One directory entry as returned by readdir().
struct DirEntry {
  std::string name;
  NodeId node = kInvalidNode;
  FileType type = FileType::regular;
};

/// open() flags (subset of O_*).
namespace open_flags {
inline constexpr int read_only = 0x0;
inline constexpr int write_only = 0x1;
inline constexpr int read_write = 0x2;
inline constexpr int accmode = 0x3;
inline constexpr int create = 0x40;
inline constexpr int excl = 0x80;
inline constexpr int truncate = 0x200;
inline constexpr int append = 0x400;
}  // namespace open_flags

}  // namespace yanc::vfs
