#include "yanc/vfs/memfs.hpp"

#include <algorithm>
#include <cassert>

namespace yanc::vfs {
namespace {

bool valid_name(const std::string& name, std::size_t name_max) {
  if (name.empty() || name == "." || name == "..") return false;
  if (name.size() > name_max) return false;
  return name.find('/') == std::string::npos &&
         name.find('\0') == std::string::npos;
}

}  // namespace

MemFs::MemFs(MemFsOptions options) : options_(options) {
  Inode root;
  root.type = FileType::directory;
  root.mode = 0755;
  root.nlink = 2;
  inodes_.emplace(kRootNode, std::move(root));
}

MemFs::MutationScope::~MutationScope() {
  if (fs_.pending_actions_.empty()) return;
  std::vector<PendingAction> batch;
  batch.swap(fs_.pending_actions_);
  // Take the fan-out order lock before dropping mu_, so events from
  // consecutive mutations reach consumer queues in commit order.  Consumer
  // queues are only ever touched after mu_ is released (the lock-order
  // hazard this design removes).
  dbg::LockGuard order(fs_.emit_mu_);
  // Guard scopes cannot express this overlap: emit_mu_ must be taken
  // before mu_ drops so fan-out preserves commit order (rank order stays
  // vfs_namespace -> vfs_emit).
  // yanc-lint: allow(manual-lock) ordered hand-off, see comment above
  lock_.unlock();
  for (PendingAction& a : batch) {
    if (a.kind == PendingAction::Kind::emit)
      fs_.watches_.emit(a.ev.node, a.ev.mask, a.ev.name, a.ev.cookie);
    else
      fs_.watches_.drop_node(a.ev.node);
  }
}

void MemFs::queue_event_locked(NodeId node, std::uint32_t mask,
                               std::string name, std::uint32_t cookie) {
  pending_actions_.push_back(PendingAction{
      PendingAction::Kind::emit, Event{mask, node, std::move(name), cookie}});
}

void MemFs::queue_drop_locked(NodeId node) {
  pending_actions_.push_back(
      PendingAction{PendingAction::Kind::drop, Event{0, node, {}, 0}});
}

MemFs::Inode* MemFs::find(NodeId id) {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

const MemFs::Inode* MemFs::find(NodeId id) const {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

Status MemFs::check_access_locked(const Inode& node, std::uint8_t want,
                                  const Credentials& creds) const {
  if (node.acl) {
    return node.acl->permits(creds, node.uid, node.gid, want)
               ? ok_status()
               : make_error_code(Errc::access_denied);
  }
  if (creds.is_root()) return ok_status();
  std::uint32_t shift;
  if (creds.uid == node.uid)
    shift = 6;
  else if (creds.in_group(node.gid))
    shift = 3;
  else
    shift = 0;
  std::uint8_t granted = static_cast<std::uint8_t>((node.mode >> shift) & 7);
  return (granted & want) == want ? ok_status()
                                  : make_error_code(Errc::access_denied);
}

Result<NodeId> MemFs::new_node_locked(FileType type, std::uint32_t mode,
                                      const Credentials& creds) {
  if (options_.max_inodes && inodes_.size() >= options_.max_inodes)
    return Errc::no_space;
  NodeId id = next_node_++;
  Inode node;
  node.type = type;
  node.mode = mode & mode::all;
  node.uid = creds.uid;
  node.gid = creds.gid;
  node.nlink = type == FileType::directory ? 2 : 1;
  node.mtime_ns = node.ctime_ns = now_ns();
  inodes_.emplace(id, std::move(node));
  return id;
}

Result<NodeId> MemFs::add_child_locked(NodeId parent, const std::string& name,
                                       FileType type, std::uint32_t mode,
                                       const Credentials& creds) {
  Inode* dir = find(parent);
  if (!dir) return Errc::not_found;
  if (dir->type != FileType::directory) return Errc::not_dir;
  if (name.size() > options_.name_max) return Errc::name_too_long;
  if (!valid_name(name, options_.name_max)) return Errc::invalid_argument;
  if (auto st = check_access_locked(*dir, 2 /*write*/, creds); st) return st;
  if (dir->children.count(name)) return Errc::exists;

  auto id = new_node_locked(type, mode, creds);
  if (!id) return id;
  dir = find(parent);  // re-find: map may have rehashed
  dir->children.emplace(name, *id);
  if (type == FileType::directory) ++dir->nlink;
  touch_locked(*dir);
  Inode* child = find(*id);
  child->parent_hint = parent;
  child->name_hint = name;
  queue_event_locked(parent, event::created, name);
  return id;
}

void MemFs::touch_locked(Inode& node) {
  node.mtime_ns = now_ns();
  ++node.version;
}

void MemFs::emit_node_event_locked(NodeId node, std::uint32_t mask) {
  queue_event_locked(node, mask);
  const Inode* ino = find(node);
  if (ino && ino->parent_hint != kInvalidNode)
    queue_event_locked(ino->parent_hint, mask, ino->name_hint);
}

Result<NodeId> MemFs::lookup_locked(NodeId parent,
                                    const std::string& name) const {
  const Inode* dir = find(parent);
  if (!dir) return Errc::not_found;
  if (dir->type != FileType::directory) return Errc::not_dir;
  if (name == ".") return parent;
  auto it = dir->children.find(name);
  if (it == dir->children.end()) return Errc::not_found;
  return it->second;
}

Result<NodeId> MemFs::lookup(NodeId parent, const std::string& name) {
  dbg::SharedLock lock(mu_);
  return lookup_locked(parent, name);
}

Result<Stat> MemFs::getattr(NodeId node) {
  dbg::SharedLock lock(mu_);
  const Inode* ino = find(node);
  if (!ino) return Errc::not_found;
  // Content size/version/mtime may be advancing under a concurrent
  // shared-lock write(); the shard lock makes this snapshot consistent.
  dbg::SharedLock data_lock(shard_of(node));
  Stat st;
  st.ino = node;
  st.type = ino->type;
  st.mode = ino->mode;
  st.uid = ino->uid;
  st.gid = ino->gid;
  st.nlink = ino->nlink;
  st.size = ino->type == FileType::directory ? ino->children.size()
            : ino->type == FileType::symlink ? ino->target.size()
                                             : ino->data.size();
  st.version = ino->version;
  st.mtime_ns = ino->mtime_ns;
  st.ctime_ns = ino->ctime_ns;
  return st;
}

Result<std::vector<DirEntry>> MemFs::readdir(NodeId dir_id) {
  dbg::SharedLock lock(mu_);
  const Inode* dir = find(dir_id);
  if (!dir) return Errc::not_found;
  if (dir->type != FileType::directory) return Errc::not_dir;
  std::vector<DirEntry> out;
  out.reserve(dir->children.size());
  for (const auto& [name, id] : dir->children) {
    const Inode* child = find(id);
    out.push_back(DirEntry{name, id,
                           child ? child->type : FileType::regular});
  }
  return out;
}

Result<NodeId> MemFs::mkdir_locked(NodeId parent, const std::string& name,
                                   std::uint32_t mode,
                                   const Credentials& creds) {
  auto id = add_child_locked(parent, name, FileType::directory, mode, creds);
  if (id) on_mkdir(*id, parent, name, creds);
  return id;
}

Result<NodeId> MemFs::mkdir(NodeId parent, const std::string& name,
                            std::uint32_t mode, const Credentials& creds) {
  MutationScope scope(*this);
  return mkdir_locked(parent, name, mode, creds);
}

Result<NodeId> MemFs::create_locked(NodeId parent, const std::string& name,
                                    std::uint32_t mode,
                                    const Credentials& creds) {
  return add_child_locked(parent, name, FileType::regular, mode, creds);
}

Result<NodeId> MemFs::create(NodeId parent, const std::string& name,
                             std::uint32_t mode, const Credentials& creds) {
  MutationScope scope(*this);
  return create_locked(parent, name, mode, creds);
}

Result<NodeId> MemFs::symlink_locked(NodeId parent, const std::string& name,
                                     const std::string& target,
                                     const Credentials& creds) {
  if (auto st = on_symlink(parent, name, target); st) return st;
  auto id = add_child_locked(parent, name, FileType::symlink, 0777, creds);
  if (!id) return id;
  find(*id)->target = target;
  return id;
}

Result<NodeId> MemFs::symlink(NodeId parent, const std::string& name,
                              const std::string& target,
                              const Credentials& creds) {
  MutationScope scope(*this);
  return symlink_locked(parent, name, target, creds);
}

Result<std::string> MemFs::readlink(NodeId node) {
  dbg::SharedLock lock(mu_);
  const Inode* ino = find(node);
  if (!ino) return Errc::not_found;
  if (ino->type != FileType::symlink) return Errc::invalid_argument;
  return ino->target;
}

Status MemFs::link(NodeId node, NodeId parent, const std::string& name,
                   const Credentials& creds) {
  MutationScope scope(*this);
  Inode* target = find(node);
  if (!target) return make_error_code(Errc::not_found);
  if (target->type == FileType::directory)
    return make_error_code(Errc::not_permitted);  // no hard links to dirs
  Inode* dir = find(parent);
  if (!dir) return make_error_code(Errc::not_found);
  if (dir->type != FileType::directory) return make_error_code(Errc::not_dir);
  if (!valid_name(name, options_.name_max))
    return make_error_code(Errc::invalid_argument);
  if (auto st = check_access_locked(*dir, 2, creds); st) return st;
  if (dir->children.count(name)) return make_error_code(Errc::exists);
  dir->children.emplace(name, node);
  ++target->nlink;
  target->ctime_ns = now_ns();
  touch_locked(*dir);
  queue_event_locked(parent, event::created, name);
  return ok_status();
}

void MemFs::destroy_subtree_locked(NodeId node) {
  Inode* ino = find(node);
  if (!ino) return;
  if (ino->type == FileType::directory) {
    // Copy child list: erase mutates the map.
    std::vector<std::pair<std::string, NodeId>> children(
        ino->children.begin(), ino->children.end());
    for (auto& [name, child] : children) destroy_subtree_locked(child);
    ino = find(node);
  }
  if (ino->type == FileType::regular)
    bytes_used_.fetch_sub(ino->data.size(), std::memory_order_relaxed);
  emit_node_event_locked(node, event::delete_self);
  queue_drop_locked(node);
  on_remove_node(node);
  inodes_.erase(node);
}

Status MemFs::unlink_locked(NodeId parent, const std::string& name,
                            const Credentials& creds) {
  Inode* dir = find(parent);
  if (!dir) return make_error_code(Errc::not_found);
  if (dir->type != FileType::directory) return make_error_code(Errc::not_dir);
  auto it = dir->children.find(name);
  if (it == dir->children.end()) return make_error_code(Errc::not_found);
  Inode* target = find(it->second);
  if (target && target->type == FileType::directory)
    return make_error_code(Errc::is_dir);
  if (auto st = check_access_locked(*dir, 2, creds); st) return st;
  // Sticky directory: only the file owner, directory owner, or root may
  // remove an entry.
  if ((dir->mode & mode::sticky) && !creds.is_root() &&
      creds.uid != dir->uid && target && creds.uid != target->uid)
    return make_error_code(Errc::not_permitted);

  NodeId victim = it->second;
  dir->children.erase(it);
  touch_locked(*dir);
  bump_change_gen();
  queue_event_locked(parent, event::deleted, name);
  if (target) {
    if (--target->nlink == 0) {
      bytes_used_.fetch_sub(target->data.size(), std::memory_order_relaxed);
      queue_event_locked(victim, event::delete_self);
      queue_drop_locked(victim);
      on_remove_node(victim);
      inodes_.erase(victim);
    } else {
      target->ctime_ns = now_ns();
    }
  }
  return ok_status();
}

Status MemFs::unlink(NodeId parent, const std::string& name,
                     const Credentials& creds) {
  MutationScope scope(*this);
  return unlink_locked(parent, name, creds);
}

Status MemFs::rmdir(NodeId parent, const std::string& name,
                    const Credentials& creds) {
  MutationScope scope(*this);
  return rmdir_locked(parent, name, creds);
}

Status MemFs::rmdir_locked(NodeId parent, const std::string& name,
                           const Credentials& creds) {
  Inode* dir = find(parent);
  if (!dir) return make_error_code(Errc::not_found);
  if (dir->type != FileType::directory) return make_error_code(Errc::not_dir);
  auto it = dir->children.find(name);
  if (it == dir->children.end()) return make_error_code(Errc::not_found);
  NodeId victim = it->second;
  Inode* target = find(victim);
  if (!target || target->type != FileType::directory)
    return make_error_code(Errc::not_dir);
  if (!target->children.empty() && !rmdir_recursive_allowed(victim))
    return make_error_code(Errc::not_empty);
  if (auto st = check_access_locked(*dir, 2, creds); st) return st;
  if ((dir->mode & mode::sticky) && !creds.is_root() &&
      creds.uid != dir->uid && creds.uid != target->uid)
    return make_error_code(Errc::not_permitted);

  dir->children.erase(it);
  --dir->nlink;
  touch_locked(*dir);
  bump_change_gen();
  queue_event_locked(parent, event::deleted, name);
  destroy_subtree_locked(victim);
  return ok_status();
}

Status MemFs::rename(NodeId old_parent, const std::string& old_name,
                     NodeId new_parent, const std::string& new_name,
                     const Credentials& creds) {
  MutationScope scope(*this);
  return rename_locked(old_parent, old_name, new_parent, new_name, creds);
}

Status MemFs::rename_locked(NodeId old_parent, const std::string& old_name,
                            NodeId new_parent, const std::string& new_name,
                            const Credentials& creds) {
  Inode* src_dir = find(old_parent);
  Inode* dst_dir = find(new_parent);
  if (!src_dir || !dst_dir) return make_error_code(Errc::not_found);
  if (src_dir->type != FileType::directory ||
      dst_dir->type != FileType::directory)
    return make_error_code(Errc::not_dir);
  if (!valid_name(new_name, options_.name_max))
    return make_error_code(Errc::invalid_argument);
  auto src_it = src_dir->children.find(old_name);
  if (src_it == src_dir->children.end())
    return make_error_code(Errc::not_found);
  NodeId moving = src_it->second;
  Inode* node = find(moving);
  if (!node) return make_error_code(Errc::io_error);
  if (auto st = check_access_locked(*src_dir, 2, creds); st) return st;
  if (auto st = check_access_locked(*dst_dir, 2, creds); st) return st;

  if (old_parent == new_parent && old_name == new_name) return ok_status();

  // A directory may not be moved into its own subtree.
  if (node->type == FileType::directory) {
    NodeId walk = new_parent;
    while (walk != kInvalidNode) {
      if (walk == moving) return make_error_code(Errc::invalid_argument);
      const Inode* w = find(walk);
      if (!w || walk == kRootNode) break;
      walk = w->parent_hint;
    }
  }

  // Handle an existing destination entry.
  auto dst_it = dst_dir->children.find(new_name);
  if (dst_it != dst_dir->children.end()) {
    Inode* existing = find(dst_it->second);
    if (existing) {
      if (existing->type == FileType::directory) {
        if (node->type != FileType::directory)
          return make_error_code(Errc::is_dir);
        if (!existing->children.empty())
          return make_error_code(Errc::not_empty);
        --dst_dir->nlink;
        destroy_subtree_locked(dst_it->second);
      } else {
        if (node->type == FileType::directory)
          return make_error_code(Errc::not_dir);
        if (--existing->nlink == 0) {
          bytes_used_.fetch_sub(existing->data.size(),
                                std::memory_order_relaxed);
          queue_event_locked(dst_it->second, event::delete_self);
          queue_drop_locked(dst_it->second);
          on_remove_node(dst_it->second);
          inodes_.erase(dst_it->second);
        }
      }
    }
    // Re-find: destroy/erase may have invalidated pointers.
    src_dir = find(old_parent);
    dst_dir = find(new_parent);
    node = find(moving);
    dst_dir->children.erase(new_name);
  }

  src_dir->children.erase(old_name);
  dst_dir->children.emplace(new_name, moving);
  if (node->type == FileType::directory && old_parent != new_parent) {
    --src_dir->nlink;
    ++dst_dir->nlink;
  }
  node->parent_hint = new_parent;
  node->name_hint = new_name;
  node->ctime_ns = now_ns();
  touch_locked(*src_dir);
  if (old_parent != new_parent) touch_locked(*dst_dir);
  bump_change_gen();

  std::uint32_t cookie = next_cookie_++;
  queue_event_locked(old_parent, event::moved_from, old_name, cookie);
  queue_event_locked(new_parent, event::moved_to, new_name, cookie);
  queue_event_locked(moving, event::move_self);
  return ok_status();
}

Result<std::string> MemFs::read_locked(NodeId node, std::uint64_t offset,
                                       std::uint64_t size,
                                       const Credentials& creds) {
  const Inode* ino = find(node);
  if (!ino) return Errc::not_found;
  if (ino->type == FileType::directory) return Errc::is_dir;
  if (ino->type != FileType::regular) return Errc::invalid_argument;
  if (auto st = check_access_locked(*ino, 4, creds); st) return st;
  if (offset >= ino->data.size()) return std::string{};
  return ino->data.substr(offset, size);
}

Result<std::string> MemFs::read(NodeId node, std::uint64_t offset,
                                std::uint64_t size, const Credentials& creds) {
  dbg::SharedLock lock(mu_);
  const Inode* ino = find(node);
  if (!ino) return Errc::not_found;
  if (ino->type == FileType::directory) return Errc::is_dir;
  if (ino->type != FileType::regular) return Errc::invalid_argument;
  if (auto st = check_access_locked(*ino, 4, creds); st) return st;
  // Reads of distinct files only share mu_ (shared) — they serialize
  // nowhere; a concurrent write to *this* file is excluded by its shard.
  dbg::SharedLock data_lock(shard_of(node));
  if (offset >= ino->data.size()) return std::string{};
  return ino->data.substr(offset, size);
}

Result<std::uint64_t> MemFs::write_locked(NodeId node, std::uint64_t offset,
                                          std::string_view data,
                                          const Credentials& creds) {
  Inode* ino = find(node);
  if (!ino) return Errc::not_found;
  if (ino->type == FileType::directory) return Errc::is_dir;
  if (ino->type != FileType::regular) return Errc::invalid_argument;
  if (auto st = check_access_locked(*ino, 2, creds); st) return st;

  std::uint64_t end = offset + data.size();
  std::size_t old_size = ino->data.size();
  std::size_t new_size = std::max<std::uint64_t>(end, old_size);
  std::size_t delta = new_size - old_size;
  if (options_.max_bytes && delta &&
      bytes_used_.load(std::memory_order_relaxed) + delta > options_.max_bytes)
    return Errc::no_space;

  // Build the prospective content so the schema hook can validate it before
  // it becomes visible (typed files reject malformed values atomically).
  std::string content = ino->data;
  if (content.size() < end) content.resize(end, '\0');
  content.replace(static_cast<std::size_t>(offset), data.size(), data);
  if (auto st = on_write(node, content); st) return st;

  bytes_used_.fetch_add(delta, std::memory_order_relaxed);
  ino = find(node);  // on_write may have touched the map
  ino->data = std::move(content);
  touch_locked(*ino);
  emit_node_event_locked(node, event::modified);
  return static_cast<std::uint64_t>(data.size());
}

Result<std::uint64_t> MemFs::write(NodeId node, std::uint64_t offset,
                                   std::string_view data,
                                   const Credentials& creds) {
  Event events[2];
  std::size_t n_events = 0;
  {
    dbg::SharedLock lock(mu_);
    Inode* ino = find(node);
    if (!ino) return Errc::not_found;
    if (ino->type == FileType::directory) return Errc::is_dir;
    if (ino->type != FileType::regular) return Errc::invalid_argument;
    if (auto st = check_access_locked(*ino, 2, creds); st) return st;

    // Content mutation needs only mu_ shared + this inode's shard
    // exclusive: writes to distinct files run concurrently with each
    // other and with every reader of other files.
    dbg::UniqueLock data_lock(shard_of(node));
    std::uint64_t end = offset + data.size();
    std::size_t old_size = ino->data.size();
    std::size_t new_size = std::max<std::uint64_t>(end, old_size);
    std::size_t delta = new_size - old_size;
    if (delta) {
      // Optimistic quota claim; concurrent growers may race past the
      // check-then-add, so claim first and roll back on overshoot.
      std::size_t prev = bytes_used_.fetch_add(delta,
                                               std::memory_order_relaxed);
      if (options_.max_bytes && prev + delta > options_.max_bytes) {
        bytes_used_.fetch_sub(delta, std::memory_order_relaxed);
        return Errc::no_space;
      }
    }
    std::string content = ino->data;
    if (content.size() < end) content.resize(end, '\0');
    content.replace(static_cast<std::size_t>(offset), data.size(), data);
    if (auto st = on_write(node, content); st) {
      if (delta) bytes_used_.fetch_sub(delta, std::memory_order_relaxed);
      return st;
    }
    ino->data = std::move(content);
    touch_locked(*ino);
    if (watches_.watched(node))
      events[n_events++] = Event{event::modified, node, {}, 0};
    if (ino->parent_hint != kInvalidNode && watches_.watched(ino->parent_hint))
      events[n_events++] =
          Event{event::modified, ino->parent_hint, ino->name_hint, 0};
  }
  if (n_events) {
    dbg::LockGuard order(emit_mu_);
    for (std::size_t i = 0; i < n_events; ++i)
      watches_.emit(events[i].node, events[i].mask, events[i].name,
                    events[i].cookie);
  }
  return static_cast<std::uint64_t>(data.size());
}

Result<std::uint64_t> MemFs::replace(NodeId node, std::string_view data,
                                     const Credentials& creds) {
  Event events[2];
  std::size_t n_events = 0;
  {
    dbg::SharedLock lock(mu_);
    Inode* ino = find(node);
    if (!ino) return Errc::not_found;
    if (ino->type == FileType::directory) return Errc::is_dir;
    if (ino->type != FileType::regular) return Errc::invalid_argument;
    if (auto st = check_access_locked(*ino, 2, creds); st) return st;

    // The new content is swapped in under one shard-exclusive section, so
    // readers see either the old file or the new one — never the empty
    // window the truncate+write fallback exposes.
    dbg::UniqueLock data_lock(shard_of(node));
    std::size_t old_size = ino->data.size();
    std::size_t grow = data.size() > old_size ? data.size() - old_size : 0;
    if (grow) {
      std::size_t prev =
          bytes_used_.fetch_add(grow, std::memory_order_relaxed);
      if (options_.max_bytes && prev + grow > options_.max_bytes) {
        bytes_used_.fetch_sub(grow, std::memory_order_relaxed);
        return Errc::no_space;
      }
    }
    std::string content(data);
    if (auto st = on_write(node, content); st) {
      if (grow) bytes_used_.fetch_sub(grow, std::memory_order_relaxed);
      return st;
    }
    if (old_size > data.size())
      bytes_used_.fetch_sub(old_size - data.size(),
                            std::memory_order_relaxed);
    ino->data = std::move(content);
    touch_locked(*ino);
    if (watches_.watched(node))
      events[n_events++] = Event{event::modified, node, {}, 0};
    if (ino->parent_hint != kInvalidNode && watches_.watched(ino->parent_hint))
      events[n_events++] =
          Event{event::modified, ino->parent_hint, ino->name_hint, 0};
  }
  if (n_events) {
    dbg::LockGuard order(emit_mu_);
    for (std::size_t i = 0; i < n_events; ++i)
      watches_.emit(events[i].node, events[i].mask, events[i].name,
                    events[i].cookie);
  }
  return static_cast<std::uint64_t>(data.size());
}

Status MemFs::truncate(NodeId node, std::uint64_t size,
                       const Credentials& creds) {
  MutationScope scope(*this);
  Inode* ino = find(node);
  if (!ino) return make_error_code(Errc::not_found);
  if (ino->type == FileType::directory) return make_error_code(Errc::is_dir);
  if (ino->type != FileType::regular)
    return make_error_code(Errc::invalid_argument);
  if (auto st = check_access_locked(*ino, 2, creds); st) return st;
  std::size_t old_size = ino->data.size();
  if (options_.max_bytes && size > old_size &&
      bytes_used_.load(std::memory_order_relaxed) + (size - old_size) >
          options_.max_bytes)
    return make_error_code(Errc::no_space);

  std::string content = ino->data;
  content.resize(size, '\0');
  if (auto st = on_write(node, content); st) return st;
  if (content.size() >= old_size)
    bytes_used_.fetch_add(content.size() - old_size,
                          std::memory_order_relaxed);
  else
    bytes_used_.fetch_sub(old_size - content.size(),
                          std::memory_order_relaxed);
  ino = find(node);
  ino->data = std::move(content);
  touch_locked(*ino);
  emit_node_event_locked(node, event::modified);
  return ok_status();
}

Status MemFs::chmod(NodeId node, std::uint32_t new_mode,
                    const Credentials& creds) {
  MutationScope scope(*this);
  Inode* ino = find(node);
  if (!ino) return make_error_code(Errc::not_found);
  if (!creds.is_root() && creds.uid != ino->uid)
    return make_error_code(Errc::not_permitted);
  ino->mode = new_mode & mode::all;
  ino->ctime_ns = now_ns();
  ++ino->version;
  bump_change_gen();  // traversal permissions changed
  emit_node_event_locked(node, event::attrib);
  return ok_status();
}

Status MemFs::chown(NodeId node, Uid uid, Gid gid, const Credentials& creds) {
  MutationScope scope(*this);
  Inode* ino = find(node);
  if (!ino) return make_error_code(Errc::not_found);
  // Only root may change the owner; the owner may change the group to one
  // of their own groups.
  if (!creds.is_root()) {
    if (uid != ino->uid || creds.uid != ino->uid || !creds.in_group(gid))
      return make_error_code(Errc::not_permitted);
  }
  ino->uid = uid;
  ino->gid = gid;
  ino->ctime_ns = now_ns();
  ++ino->version;
  bump_change_gen();
  emit_node_event_locked(node, event::attrib);
  return ok_status();
}

Status MemFs::setxattr(NodeId node, const std::string& name,
                       std::vector<std::uint8_t> value,
                       const Credentials& creds) {
  MutationScope scope(*this);
  Inode* ino = find(node);
  if (!ino) return make_error_code(Errc::not_found);
  if (name.empty()) return make_error_code(Errc::invalid_argument);
  // system.* namespace requires ownership; user.* requires write access.
  if (name.rfind("system.", 0) == 0) {
    if (!creds.is_root() && creds.uid != ino->uid)
      return make_error_code(Errc::not_permitted);
  } else if (auto st = check_access_locked(*ino, 2, creds); st) {
    return st;
  }
  if (name == kAclXattr) {
    auto acl = Acl::decode(value);
    if (!acl) return acl.error();
    ino->acl = *acl;
  }
  ino->xattrs[name] = std::move(value);
  ino->ctime_ns = now_ns();
  ++ino->version;
  bump_change_gen();  // the ACL xattr changes traversal permissions
  emit_node_event_locked(node, event::attrib);
  return ok_status();
}

Result<std::vector<std::uint8_t>> MemFs::getxattr(NodeId node,
                                                  const std::string& name) {
  dbg::SharedLock lock(mu_);
  const Inode* ino = find(node);
  if (!ino) return Errc::not_found;
  auto it = ino->xattrs.find(name);
  if (it == ino->xattrs.end()) return Errc::not_found;
  return it->second;
}

Result<std::vector<std::string>> MemFs::listxattr(NodeId node) {
  dbg::SharedLock lock(mu_);
  const Inode* ino = find(node);
  if (!ino) return Errc::not_found;
  std::vector<std::string> names;
  names.reserve(ino->xattrs.size());
  for (const auto& [name, value] : ino->xattrs) names.push_back(name);
  return names;
}

Status MemFs::removexattr(NodeId node, const std::string& name,
                          const Credentials& creds) {
  MutationScope scope(*this);
  Inode* ino = find(node);
  if (!ino) return make_error_code(Errc::not_found);
  if (name.rfind("system.", 0) == 0) {
    if (!creds.is_root() && creds.uid != ino->uid)
      return make_error_code(Errc::not_permitted);
  } else if (auto st = check_access_locked(*ino, 2, creds); st) {
    return st;
  }
  auto it = ino->xattrs.find(name);
  if (it == ino->xattrs.end()) return make_error_code(Errc::not_found);
  if (name == kAclXattr) ino->acl.reset();
  ino->xattrs.erase(it);
  ino->ctime_ns = now_ns();
  ++ino->version;
  bump_change_gen();
  emit_node_event_locked(node, event::attrib);
  return ok_status();
}

Status MemFs::access(NodeId node, std::uint8_t want, const Credentials& creds) {
  dbg::SharedLock lock(mu_);
  const Inode* ino = find(node);
  if (!ino) return make_error_code(Errc::not_found);
  return check_access_locked(*ino, want, creds);
}

Result<WatchRegistry::WatchId> MemFs::watch(NodeId node, std::uint32_t mask,
                                            WatchQueuePtr queue) {
  dbg::SharedLock lock(mu_);
  if (!find(node)) return Errc::not_found;
  if (!queue || mask == 0) return Errc::invalid_argument;
  return watches_.add(node, mask, std::move(queue));
}

void MemFs::unwatch(WatchRegistry::WatchId id) {
  dbg::SharedLock lock(mu_);
  watches_.remove(id);
}

std::size_t MemFs::inode_count() const {
  dbg::SharedLock lock(mu_);
  return inodes_.size();
}

std::size_t MemFs::bytes_used() const {
  return bytes_used_.load(std::memory_order_relaxed);
}

Result<std::string> MemFs::path_of(NodeId node) const {
  dbg::SharedLock lock(mu_);
  if (node == kRootNode) return std::string("/");
  std::vector<const std::string*> components;
  NodeId walk = node;
  for (int depth = 0; depth < 512; ++depth) {
    const Inode* ino = find(walk);
    if (!ino) return Errc::not_found;
    if (walk == kRootNode) break;
    if (ino->parent_hint == kInvalidNode) return Errc::not_found;
    components.push_back(&ino->name_hint);
    walk = ino->parent_hint;
  }
  std::string path;
  for (auto it = components.rbegin(); it != components.rend(); ++it) {
    path += '/';
    path += **it;
  }
  return path.empty() ? std::string("/") : path;
}

std::optional<std::vector<std::uint8_t>> MemFs::nearest_xattr(
    NodeId node, const std::string& name) const {
  dbg::SharedLock lock(mu_);
  NodeId walk = node;
  for (int depth = 0; depth < 512; ++depth) {
    const Inode* ino = find(walk);
    if (!ino) return std::nullopt;
    auto it = ino->xattrs.find(name);
    if (it != ino->xattrs.end()) return it->second;
    if (walk == kRootNode || ino->parent_hint == kInvalidNode)
      return std::nullopt;
    walk = ino->parent_hint;
  }
  return std::nullopt;
}

}  // namespace yanc::vfs
