#include "yanc/vfs/acl.hpp"

#include "yanc/util/strings.hpp"

namespace yanc::vfs {
namespace {

constexpr std::uint8_t kAclEncodingVersion = 1;

std::string perms_text(std::uint8_t p) {
  std::string s = "---";
  if (p & 4) s[0] = 'r';
  if (p & 2) s[1] = 'w';
  if (p & 1) s[2] = 'x';
  return s;
}

Result<std::uint8_t> parse_perms(std::string_view s) {
  if (s.size() != 3) return Errc::invalid_argument;
  std::uint8_t p = 0;
  if (s[0] == 'r') p |= 4; else if (s[0] != '-') return Errc::invalid_argument;
  if (s[1] == 'w') p |= 2; else if (s[1] != '-') return Errc::invalid_argument;
  if (s[2] == 'x') p |= 1; else if (s[2] != '-') return Errc::invalid_argument;
  return p;
}

const char* tag_name(AclTag t) {
  switch (t) {
    case AclTag::user_obj:
    case AclTag::user: return "user";
    case AclTag::group_obj:
    case AclTag::group: return "group";
    case AclTag::mask: return "mask";
    case AclTag::other: return "other";
  }
  return "?";
}

}  // namespace

Acl Acl::from_mode(std::uint32_t m) {
  Acl acl;
  acl.add({AclTag::user_obj, 0, static_cast<std::uint8_t>((m >> 6) & 7)});
  acl.add({AclTag::group_obj, 0, static_cast<std::uint8_t>((m >> 3) & 7)});
  acl.add({AclTag::other, 0, static_cast<std::uint8_t>(m & 7)});
  return acl;
}

Status Acl::validate() const {
  int user_obj = 0, group_obj = 0, other = 0, mask = 0, named = 0;
  for (const auto& e : entries_) {
    if (e.perms > 7) return Errc::invalid_argument;
    switch (e.tag) {
      case AclTag::user_obj: ++user_obj; break;
      case AclTag::group_obj: ++group_obj; break;
      case AclTag::other: ++other; break;
      case AclTag::mask: ++mask; break;
      case AclTag::user:
      case AclTag::group: ++named; break;
    }
  }
  if (user_obj != 1 || group_obj != 1 || other != 1 || mask > 1)
    return Errc::invalid_argument;
  if (named > 0 && mask == 0) return Errc::invalid_argument;
  return ok_status();
}

bool Acl::permits(const Credentials& creds, Uid owner, Gid group,
                  std::uint8_t want) const {
  if (creds.is_root()) return true;

  std::uint8_t mask_perms = 7;
  bool have_mask = false;
  for (const auto& e : entries_) {
    if (e.tag == AclTag::mask) {
      mask_perms = e.perms;
      have_mask = true;
    }
  }

  // 1. Owner match: user_obj applies, no mask.
  if (creds.uid == owner) {
    for (const auto& e : entries_)
      if (e.tag == AclTag::user_obj) return (e.perms & want) == want;
    return false;
  }
  // 2. Named user entry (masked).
  for (const auto& e : entries_) {
    if (e.tag == AclTag::user && e.id == creds.uid)
      return ((e.perms & mask_perms) & want) == want;
  }
  // 3. Owning-group / named-group entries: POSIX grants access if ANY
  //    matching group entry grants all requested bits.
  bool group_matched = false;
  for (const auto& e : entries_) {
    if (e.tag == AclTag::group_obj && creds.in_group(group)) {
      group_matched = true;
      std::uint8_t eff = have_mask ? (e.perms & mask_perms) : e.perms;
      if ((eff & want) == want) return true;
    } else if (e.tag == AclTag::group && creds.in_group(e.id)) {
      group_matched = true;
      if (((e.perms & mask_perms) & want) == want) return true;
    }
  }
  if (group_matched) return false;
  // 4. Other.
  for (const auto& e : entries_)
    if (e.tag == AclTag::other) return (e.perms & want) == want;
  return false;
}

std::vector<std::uint8_t> Acl::encode() const {
  std::vector<std::uint8_t> out;
  out.push_back(kAclEncodingVersion);
  for (const auto& e : entries_) {
    out.push_back(static_cast<std::uint8_t>(e.tag));
    out.push_back(e.perms);
    for (int shift = 24; shift >= 0; shift -= 8)
      out.push_back(static_cast<std::uint8_t>(e.id >> shift));
  }
  return out;
}

Result<Acl> Acl::decode(const std::vector<std::uint8_t>& data) {
  if (data.empty() || data[0] != kAclEncodingVersion ||
      (data.size() - 1) % 6 != 0)
    return Errc::invalid_argument;
  Acl acl;
  for (std::size_t i = 1; i + 6 <= data.size(); i += 6) {
    AclEntry e;
    if (data[i] > static_cast<std::uint8_t>(AclTag::other))
      return Errc::invalid_argument;
    e.tag = static_cast<AclTag>(data[i]);
    e.perms = data[i + 1];
    e.id = (static_cast<std::uint32_t>(data[i + 2]) << 24) |
           (static_cast<std::uint32_t>(data[i + 3]) << 16) |
           (static_cast<std::uint32_t>(data[i + 4]) << 8) |
           static_cast<std::uint32_t>(data[i + 5]);
    acl.add(e);
  }
  if (auto st = acl.validate(); st) return st;
  return acl;
}

std::string Acl::to_text() const {
  std::string out;
  for (const auto& e : entries_) {
    if (!out.empty()) out += ',';
    out += tag_name(e.tag);
    out += ':';
    if (e.tag == AclTag::user || e.tag == AclTag::group)
      out += std::to_string(e.id);
    out += ':';
    out += perms_text(e.perms);
  }
  return out;
}

Result<Acl> Acl::parse_text(std::string_view text) {
  Acl acl;
  for (const auto& item : split_nonempty(text, ',')) {
    auto fields = split(trim(item), ':');
    if (fields.size() != 3) return Errc::invalid_argument;
    auto perms = parse_perms(fields[2]);
    if (!perms) return perms.error();
    AclEntry e;
    e.perms = *perms;
    const std::string& kind = fields[0];
    const std::string& qualifier = fields[1];
    if (kind == "user") {
      e.tag = qualifier.empty() ? AclTag::user_obj : AclTag::user;
    } else if (kind == "group") {
      e.tag = qualifier.empty() ? AclTag::group_obj : AclTag::group;
    } else if (kind == "mask") {
      e.tag = AclTag::mask;
    } else if (kind == "other") {
      e.tag = AclTag::other;
    } else {
      return Errc::invalid_argument;
    }
    if (!qualifier.empty() &&
        (e.tag == AclTag::user || e.tag == AclTag::group)) {
      auto id = parse_u64(qualifier);
      if (!id || *id > 0xffffffffu) return Errc::invalid_argument;
      e.id = static_cast<std::uint32_t>(*id);
    }
    acl.add(e);
  }
  if (auto st = acl.validate(); st) return st;
  return acl;
}

}  // namespace yanc::vfs
