// A shard lease: who owns a datapath, under which fencing epoch, until
// which cluster tick.  Leases live as single-line files at
// /net/.cluster/shards/<dpid>/lease — plain replicated FS state, no
// side-channel RPC (docs/ROBUSTNESS.md "Cluster failover").  Claims and
// renewals go through Vfs::write_file (atomic replace), and concurrent
// claims resolve the way every other replicated write does: dist's
// last-writer-wins versions pick one, and the loser notices on re-read.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "yanc/util/result.hpp"

namespace yanc::cluster {

struct Lease {
  /// Node id of the lease holder.
  std::uint64_t holder = 0;
  /// Fencing token: strictly increases across ownership changes of a
  /// shard.  A deposed primary's epoch is forever below its successor's,
  /// so the switch-side fence (sw::Switch) and the driver egress gate can
  /// reject its stale FLOW_MODs.
  std::uint64_t epoch = 0;
  /// Cluster tick (virtual clock) past which the lease is dead and the
  /// shard is up for election.
  std::uint64_t expiry = 0;

  bool operator==(const Lease&) const = default;

  /// "holder=<id> epoch=<n> expiry=<tick>\n" — strict round-trip with
  /// parse().
  std::string format() const;

  /// Parses format() output.  Strict: all three keys, in order, nothing
  /// else.  A lease file a partial write or a merge mangled must read as
  /// invalid (-> election), never as some other lease.
  static Result<Lease> parse(std::string_view text);
};

}  // namespace yanc::cluster
