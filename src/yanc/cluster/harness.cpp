#include "yanc/cluster/harness.hpp"

#include <algorithm>

#include "yanc/netfs/flowio.hpp"
#include "yanc/obs/stats_fs.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::cluster {

struct Harness::Node {
  std::shared_ptr<vfs::Vfs> vfs;
  std::shared_ptr<dist::ReplicatedYancFs> fs;
  std::unique_ptr<Manager> manager;
  std::unique_ptr<driver::OfDriver> driver;
  dist::Transport::NodeId id = 0;
  bool alive = true;
};

Harness::Harness(HarnessOptions options)
    : options_(options),
      network_(scheduler_),
      transport_(scheduler_, options.link_latency) {
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->vfs = std::make_shared<vfs::Vfs>();
    std::ignore = node->vfs->mkdir("/net");
    node->fs = std::make_shared<dist::ReplicatedYancFs>(
        dist::ReplicaOptions{dist::Mode::eventual});
    std::ignore = node->vfs->mount("/net", node->fs);
    node->fs->bind_metrics(*node->vfs->metrics());
    node->id = node->fs->join_cluster(transport_);

    // /yanc/.cluster is the canonical mount of the coordination tree;
    // the files themselves live in the replicated /net/.cluster.
    std::ignore = node->vfs->mkdir_p("/yanc");
    std::ignore = node->vfs->symlink("/net/.cluster", "/yanc/.cluster");
    std::ignore = obs::mount_stats_fs(*node->vfs);

    ManagerOptions mopts;
    mopts.node_id = i;
    mopts.cluster_size = options_.nodes;
    mopts.lease_ttl = options_.lease_ttl;
    mopts.heartbeat_ttl = options_.heartbeat_ttl;
    mopts.now_ns = [this] { return scheduler_.clock().now_ns(); };
    node->manager = std::make_unique<Manager>(node->vfs, mopts);
    node->manager->bind_metrics(*node->vfs->metrics());
    node->manager->on_takeover([this, i](std::uint64_t dpid,
                                         std::uint64_t epoch) {
      connect_switch(i, dpid, epoch);
    });
    // Losing the lease must silence the whole node, not just its
    // FLOW_MODs: a deposed connection left open keeps writing keepalive
    // counters and stats mirrors into the replicated switch record,
    // fighting the successor's tree.  The egress gate covers mutation;
    // abandon covers presence.
    node->manager->on_release([this, i](std::uint64_t dpid) {
      nodes_[i]->driver->abandon_switch(dpid);
    });

    driver::DriverOptions dopts = options_.driver;
    // Per-node switch-name prefix: the drivers share one replicated
    // /net/switches namespace, and two nodes handshaking different
    // switches concurrently would otherwise both pick "sw1" and LWW-merge
    // the trees.  Failover adoption is unaffected — the reconnect path
    // matches directories by the id file, not the name.
    dopts.switch_name_prefix = "n" + std::to_string(i) + "-sw";
    // Recovery timers sized so resync completes within a settle().
    dopts.keepalive_interval = 8;
    dopts.keepalive_timeout = 64;
    dopts.request_timeout = 4;
    dopts.max_retries = 8;
    dopts.audit_interval = 16;
    dopts.egress_gate = [mgr = node->manager.get()](std::uint64_t dpid) {
      return mgr->owns(dpid);
    };
    node->driver = std::make_unique<driver::OfDriver>(node->vfs, dopts);

    nodes_.push_back(std::move(node));
  }
  transport_.bind_metrics(*nodes_[0]->vfs->metrics());

  for (std::size_t j = 0; j < options_.switches; ++j) {
    const std::uint64_t dpid = j + 1;
    sw::SwitchOptions sopts;
    sopts.datapath_id = dpid;
    auto s = std::make_unique<sw::Switch>("hw" + std::to_string(dpid),
                                          sopts, network_);
    s->add_port(1, MacAddress::from_u64(dpid), "eth1");
    s->bind_metrics(*nodes_[0]->vfs->metrics());
    switches_.push_back(std::move(s));
    // One node declares the shard; the directory replicates and the rest
    // discover it through their watch on shards/.
    std::ignore = nodes_[0]->manager->add_shard(dpid);
  }
  scheduler_.run_until_idle();
}

Harness::~Harness() = default;

Manager& Harness::manager(std::size_t node) { return *nodes_[node]->manager; }

std::shared_ptr<vfs::Vfs> Harness::vfs(std::size_t node) {
  return nodes_[node]->vfs;
}

driver::OfDriver& Harness::driver(std::size_t node) {
  return *nodes_[node]->driver;
}

bool Harness::alive(std::size_t node) const { return nodes_[node]->alive; }

void Harness::connect_switch(std::size_t node, std::uint64_t dpid,
                             std::uint64_t epoch) {
  if (dpid == 0 || dpid > switches_.size()) return;
  switches_[dpid - 1]->connect(
      nodes_[node]->driver->listener().connect(), epoch);
}

void Harness::tick() {
  ++round_;
  for (auto& node : nodes_)
    if (node->alive) node->manager->tick();
  scheduler_.run_until_idle();
  // Level-triggered re-homing: on_takeover fires once, at claim
  // confirmation, but the owner's channel can die later (keepalive
  // timeout while it was partitioned, a request abandoned) with the
  // lease intact — and then nothing else would ever reconnect the
  // switch.  An owner without a live connection re-dials, throttled so
  // an in-progress handshake (dpid still unknown) isn't stampeded.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive) continue;
    for (std::uint64_t dpid : nodes_[i]->manager->owned_shards()) {
      if (nodes_[i]->driver->switch_name(dpid)) continue;
      auto& last = last_dial_[{i, dpid}];
      if (last && round_ - last < 3) continue;
      last = round_;
      connect_switch(i, dpid, nodes_[i]->manager->epoch_of(dpid));
    }
  }
  for (int round = 0; round < 4; ++round) {
    for (auto& node : nodes_)
      if (node->alive) node->driver->poll();
    for (auto& s : switches_) s->pump();
    scheduler_.run_until_idle();
  }
}

void Harness::settle(std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) tick();
}

void Harness::kill(std::size_t node) {
  if (!nodes_[node]->alive) return;
  nodes_[node]->alive = false;
  transport_.leave(nodes_[node]->id);
}

void Harness::revive(std::size_t node) {
  if (nodes_[node]->alive) return;
  nodes_[node]->alive = true;
  nodes_[node]->fs->rejoin_cluster();
  anti_entropy();
}

void Harness::anti_entropy() {
  for (auto& node : nodes_)
    if (node->alive) node->fs->send_anti_entropy();
  scheduler_.run_until_idle();
  for (auto& node : nodes_)
    if (node->alive) node->fs->send_anti_entropy();
  scheduler_.run_until_idle();
}

std::optional<std::size_t> Harness::owner_of(std::uint64_t dpid) const {
  auto owners = owners_of(dpid);
  if (owners.size() != 1) return std::nullopt;
  return owners.front();
}

std::vector<std::size_t> Harness::owners_of(std::uint64_t dpid) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i]->alive && nodes_[i]->manager->owns(dpid)) out.push_back(i);
  return out;
}

Result<std::string> Harness::switch_dir(std::size_t node,
                                        std::uint64_t dpid) const {
  auto& vfs = *nodes_[node]->vfs;
  auto entries = vfs.readdir("/net/switches");
  if (!entries) return entries.error();
  for (const auto& e : *entries) {
    std::string dir = "/net/switches/" + e.name;
    auto id = vfs.read_file(dir + "/id");
    if (!id) continue;
    auto parsed = parse_hex_u64(trim(*id));
    if (parsed && *parsed == dpid) return dir;
  }
  return make_error_code(Errc::not_found);
}

Status Harness::commit_flow(std::size_t node, std::uint64_t dpid,
                            const std::string& name,
                            const flow::FlowSpec& spec) {
  auto dir = switch_dir(node, dpid);
  if (!dir) return dir.error();
  return netfs::write_flow(*nodes_[node]->vfs, *dir + "/flows/" + name,
                           spec);
}

std::vector<std::string> Harness::fs_flows(std::size_t node,
                                           std::uint64_t dpid) const {
  std::vector<std::string> out;
  auto dir = switch_dir(node, dpid);
  if (!dir) return out;
  auto& vfs = *nodes_[node]->vfs;
  auto entries = vfs.readdir(*dir + "/flows");
  if (!entries) return out;
  for (const auto& e : *entries) {
    auto spec = netfs::read_flow(vfs, *dir + "/flows/" + e.name);
    if (spec && spec->version > 0) out.push_back(spec->to_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Harness::hw_flows(std::uint64_t dpid) const {
  std::vector<std::string> out;
  for (const auto& e : switches_[dpid - 1]->table().entries())
    out.push_back(e.spec.to_string());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace yanc::cluster
