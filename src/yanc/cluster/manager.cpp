#include "yanc/cluster/manager.hpp"

#include <algorithm>

#include "yanc/obs/tracer.hpp"
#include "yanc/util/log.hpp"
#include "yanc/util/strings.hpp"
#include "yanc/vfs/watch.hpp"

namespace yanc::cluster {

namespace {

/// Callbacks collected under the manager lock, fired after release — a
/// callback is free to call back into the manager (owns(), epoch_of())
/// without tripping lockdep's same-rank check.
struct Pending {
  enum class Kind { takeover, release } kind;
  std::uint64_t dpid;
  std::uint64_t epoch;
};

}  // namespace

Manager::Manager(std::shared_ptr<vfs::Vfs> vfs, ManagerOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {
  if (options_.cluster_size == 0) options_.cluster_size = 1;
  // The tree may already exist (a peer created it and replication landed
  // first); mkdir_p tolerates that.
  std::ignore = vfs_->mkdir_p(options_.cluster_dir + "/nodes");
  std::ignore = vfs_->mkdir_p(shards_dir());
  watch_queue_ = std::make_shared<vfs::WatchQueue>(256);
  auto handle = vfs_->watch(shards_dir(),
                            vfs::event::created | vfs::event::deleted,
                            watch_queue_);
  if (handle)
    watch_handle_ = *handle;
  else
    log_error("cluster", "cannot watch " + shards_dir() + ": " +
                             handle.error().message());
}

void Manager::on_takeover(
    std::function<void(std::uint64_t, std::uint64_t)> fn) {
  dbg::LockGuard lock(mu_);
  takeover_cb_ = std::move(fn);
}

void Manager::on_release(std::function<void(std::uint64_t)> fn) {
  dbg::LockGuard lock(mu_);
  release_cb_ = std::move(fn);
}

Status Manager::add_shard(std::uint64_t dpid) {
  return vfs_->mkdir_p(shards_dir() + "/" + std::to_string(dpid));
}

std::string Manager::lease_path(std::uint64_t dpid) const {
  return shards_dir() + "/" + std::to_string(dpid) + "/lease";
}

std::string Manager::heartbeat_path(std::uint64_t node) const {
  return options_.cluster_dir + "/nodes/" + std::to_string(node);
}

std::uint64_t Manager::rank_for(std::uint64_t node,
                                std::uint64_t dpid) const {
  const std::uint64_t n = options_.cluster_size;
  return (node + n - (dpid % n)) % n;
}

bool Manager::node_live(
    std::uint64_t node,
    const std::map<std::uint64_t, std::uint64_t>& beats) const {
  if (node == options_.node_id) return true;
  auto it = beats.find(node);
  if (it == beats.end()) return false;
  return it->second + options_.heartbeat_ttl >= tick_;
}

std::map<std::uint64_t, std::uint64_t> Manager::read_heartbeats() const {
  std::map<std::uint64_t, std::uint64_t> beats;
  auto entries = vfs_->readdir(options_.cluster_dir + "/nodes");
  if (!entries) return beats;
  for (const auto& entry : *entries) {
    auto node = parse_u64(entry.name);
    if (!node) continue;
    auto content = vfs_->read_file(heartbeat_path(*node));
    if (!content) continue;
    auto beat = parse_u64(trim(*content));
    if (beat) beats[*node] = *beat;
  }
  return beats;
}

void Manager::discover_shards() {
  bool rescan = !scanned_once_;
  for (const auto& event : watch_queue_->drain()) {
    if (lease_event_metric_) lease_event_metric_->add();
    if (event.is(vfs::event::overflow)) {
      rescan = true;
      continue;
    }
    auto dpid = parse_u64(event.name);
    if (!dpid) continue;
    if (event.is(vfs::event::created)) {
      // A recreated (tombstoned-then-readded) shard starts from a fresh
      // view; the lease file inside it reseeds max_epoch on first read.
      shards_.try_emplace(*dpid);
    } else if (event.is(vfs::event::deleted)) {
      shards_.erase(*dpid);
    }
  }
  if (!rescan) return;
  auto entries = vfs_->readdir(shards_dir());
  if (!entries) return;
  scanned_once_ = true;
  std::map<std::uint64_t, Shard> fresh;
  for (const auto& entry : *entries) {
    auto dpid = parse_u64(entry.name);
    if (!dpid) continue;
    auto it = shards_.find(*dpid);
    if (it != shards_.end())
      fresh.emplace(*dpid, std::move(it->second));
    else
      fresh.try_emplace(*dpid);
  }
  shards_ = std::move(fresh);
}

std::uint64_t Manager::wall_ns() const {
  if (options_.now_ns) return options_.now_ns();
  return obs::Tracer::now_ns();
}

void Manager::tick() {
  std::vector<Pending> fired;
  {
    dbg::LockGuard lock(mu_);
    ++tick_;
    auto beats = read_heartbeats();
    // Lamport fast-forward: a node revived after a long kill jumps past
    // every heartbeat it can see, so its TTL math is in the present.
    for (const auto& [node, beat] : beats) tick_ = std::max(tick_, beat);
    if (vfs_->write_file(heartbeat_path(options_.node_id),
                         std::to_string(tick_) + "\n"))
      log_error("cluster", "heartbeat write failed");
    discover_shards();

    for (auto& [dpid, shard] : shards_) {
      auto content = vfs_->read_file(lease_path(dpid));
      std::optional<Lease> lease;
      if (content) {
        auto parsed = Lease::parse(*content);
        if (parsed) lease = *parsed;
      }
      shard.lease = lease;
      if (lease) shard.max_epoch = std::max(shard.max_epoch, lease->epoch);

      const bool valid = lease && lease->epoch >= shard.max_epoch &&
                         lease->expiry > tick_ &&
                         node_live(lease->holder, beats);

      if (shard.claiming) {
        shard.claiming = false;
        if (lease && *lease == shard.claim && valid) {
          // LWW settled in our favor: the claim survived a full
          // replication round against any racing claimant.
          shard.owned = true;
          if (takeover_metric_) takeover_metric_->add();
          if (shard.down_since_ns != 0) {
            if (failover_latency_metric_)
              failover_latency_metric_->record(wall_ns() -
                                               shard.down_since_ns);
            shard.down_since_ns = 0;
          }
          fired.push_back(
              {Pending::Kind::takeover, dpid, shard.claim.epoch});
          continue;
        }
        // Lost the race (or the claim already aged out): fall through to
        // the normal led/leaderless logic below.
      }

      if (shard.owned) {
        const bool still_ours =
            valid && lease->holder == options_.node_id &&
            lease->epoch == shard.max_epoch;
        if (!still_ours) {
          shard.owned = false;
          if (lost_metric_) lost_metric_->add();
          if (lease && tick_ >= lease->expiry && expired_metric_)
            expired_metric_->add();
          fired.push_back({Pending::Kind::release, dpid, 0});
          // Leaderless from our chair unless someone else validly holds
          // it; the next iteration of the loop body (next tick) elects.
          if (!valid) shard.down_since_ns = wall_ns();
          continue;
        }
        // Renew at half-life so one delayed round never drops the lease.
        if (lease->expiry - tick_ <= options_.lease_ttl / 2) {
          Lease renewed = *lease;
          renewed.expiry = tick_ + options_.lease_ttl;
          if (!vfs_->write_file(lease_path(dpid), renewed.format())) {
            if (renew_metric_) renew_metric_->add();
          }
        }
        continue;
      }

      if (valid) {
        // Someone else holds it; nothing for us to do.
        shard.down_since_ns = 0;
        continue;
      }

      // Leaderless: elect.  Deterministic winner so at most one node
      // writes a claim per settled view (races during the unsettled
      // window are resolved by LWW + the confirm re-read).  Startup
      // grace: until one heartbeat TTL has passed, peers whose first
      // heartbeat has not replicated yet would all look dead and every
      // node would claim everything — hold elections until the
      // membership view has had time to fill in.
      if (tick_ <= options_.heartbeat_ttl) continue;
      if (shard.down_since_ns == 0) shard.down_since_ns = wall_ns();
      if (lease && tick_ >= lease->expiry && expired_metric_)
        expired_metric_->add();
      std::uint64_t winner = options_.node_id;
      std::uint64_t best = rank_for(options_.node_id, dpid);
      for (std::uint64_t node = 0; node < options_.cluster_size; ++node) {
        if (!node_live(node, beats)) continue;
        const std::uint64_t rank = rank_for(node, dpid);
        if (rank < best || (rank == best && node < winner)) {
          best = rank;
          winner = node;
        }
      }
      if (winner != options_.node_id) continue;
      Lease claim;
      claim.holder = options_.node_id;
      claim.epoch = shard.max_epoch + 1;
      claim.expiry = tick_ + options_.lease_ttl;
      if (!vfs_->write_file(lease_path(dpid), claim.format())) {
        shard.claiming = true;
        shard.claim = claim;
        if (election_metric_) election_metric_->add();
      }
    }

    if (shards_owned_metric_) {
      std::int64_t owned = 0;
      for (const auto& [dpid, shard] : shards_)
        owned += shard.owned ? 1 : 0;
      shards_owned_metric_->set(owned);
    }
  }

  for (const auto& p : fired) {
    if (p.kind == Pending::Kind::takeover) {
      auto ref = obs::tracer().mint(
          "cluster", "takeover",
          "dpid=" + std::to_string(p.dpid) +
              " epoch=" + std::to_string(p.epoch) +
              " node=" + std::to_string(options_.node_id));
      obs::TraceScope scope(ref);
      obs::Span span(ref, "cluster", "takeover_resync");
      if (takeover_cb_) takeover_cb_(p.dpid, p.epoch);
    } else {
      if (release_cb_) release_cb_(p.dpid);
    }
  }
}

bool Manager::owns(std::uint64_t dpid) const {
  dbg::LockGuard lock(mu_);
  auto it = shards_.find(dpid);
  return it != shards_.end() && it->second.owned;
}

std::uint64_t Manager::epoch_of(std::uint64_t dpid) const {
  dbg::LockGuard lock(mu_);
  auto it = shards_.find(dpid);
  if (it == shards_.end() || !it->second.owned) return 0;
  return it->second.max_epoch;
}

std::vector<std::uint64_t> Manager::owned_shards() const {
  dbg::LockGuard lock(mu_);
  std::vector<std::uint64_t> out;
  for (const auto& [dpid, shard] : shards_)
    if (shard.owned) out.push_back(dpid);
  return out;
}

std::uint64_t Manager::now_tick() const {
  dbg::LockGuard lock(mu_);
  return tick_;
}

void Manager::bind_metrics(obs::Registry& registry) {
  dbg::LockGuard lock(mu_);
  election_metric_ = registry.counter("cluster/election_total");
  takeover_metric_ = registry.counter("cluster/takeover_total");
  lost_metric_ = registry.counter("cluster/ownership_lost_total");
  renew_metric_ = registry.counter("cluster/lease_renew_total");
  expired_metric_ = registry.counter("cluster/lease_expired_total");
  lease_event_metric_ = registry.counter("cluster/lease_event_total");
  failover_latency_metric_ = registry.histogram("cluster/failover_latency_ns");
  shards_owned_metric_ = registry.gauge("cluster/shards_owned");
}

}  // namespace yanc::cluster
