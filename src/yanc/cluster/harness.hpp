// The active controller cluster wired end to end, for tests, benches and
// the shell demo: N nodes, each a full controller — its own Vfs, its own
// dist::ReplicatedYancFs replica mounted at /net (eventual mode, so no
// node is special), its own OfDriver, its own cluster::Manager — plus M
// simulated switches that connect to whichever node wins their shard.
//
// How a failover actually flows through the stack:
//
//   1. node k dies (kill()): its transport slot leaves, heartbeats stop.
//   2. peers' Managers notice the dead holder at the next tick; the
//      designated successor writes a claim lease (epoch+1) through its
//      replica — ordinary replicated file I/O.
//   3. claim confirmed -> on_takeover fires -> harness connects the
//      switch to the successor's driver listener *with the new epoch*.
//   4. the driver's reconnect path adopts the replicated switch
//      directory and re-pushes every committed flow (the PR-2 resync);
//      the switch-side epoch fence rejects anything the deposed primary
//      still manages to say.
//
// The strict-mode primary is deliberately not used: lease writes must
// not depend on any one node being alive, so replication runs eventual
// and LWW resolves racing claims.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "yanc/cluster/manager.hpp"
#include "yanc/dist/replicated.hpp"
#include "yanc/driver/of_driver.hpp"
#include "yanc/sw/switch.hpp"

namespace yanc::cluster {

struct HarnessOptions {
  std::size_t nodes = 3;
  std::size_t switches = 2;
  VirtualClock::duration link_latency = std::chrono::microseconds(100);
  std::uint64_t lease_ttl = 8;
  std::uint64_t heartbeat_ttl = 4;
  /// Base driver knobs; the harness shrinks the recovery timers on top
  /// so resync happens within a few settle rounds.
  driver::DriverOptions driver;
};

class Harness {
 public:
  explicit Harness(HarnessOptions options = {});
  ~Harness();

  const HarnessOptions& options() const noexcept { return options_; }

  net::Scheduler& scheduler() noexcept { return scheduler_; }
  dist::Transport& transport() noexcept { return transport_; }
  Manager& manager(std::size_t node);
  std::shared_ptr<vfs::Vfs> vfs(std::size_t node);
  driver::OfDriver& driver(std::size_t node);
  sw::Switch& switch_at(std::uint64_t dpid) { return *switches_[dpid - 1]; }
  bool alive(std::size_t node) const;

  /// One cluster round: every live manager ticks, then drivers, switches
  /// and the scheduler run until the round's work drains.
  void tick();
  /// `rounds` ticks — enough for the startup grace to pass, elections
  /// to confirm and resyncs to land when nothing is faulted.
  void settle(std::size_t rounds = 20);

  /// Node death: transport slot leaves (in-flight messages to it die),
  /// driver and manager stop being driven.  The node's replica keeps its
  /// state for a later revive.
  void kill(std::size_t node);
  /// Revival under a new transport incarnation; anti-entropy catches the
  /// replica up on what it missed while dead.
  void revive(std::size_t node);

  /// One full anti-entropy round across live nodes (repairs divergence
  /// that faulted links caused).
  void anti_entropy();

  /// The node that currently owns `dpid` from its own chair (nullopt
  /// when none does).  `owners_of` returns every node claiming it — the
  /// split-brain probe; chaos asserts it converges to size 1.
  std::optional<std::size_t> owner_of(std::uint64_t dpid) const;
  std::vector<std::size_t> owners_of(std::uint64_t dpid) const;

  /// Commits a flow through `node`'s replica (ordinary file I/O).
  [[nodiscard]] Status commit_flow(std::size_t node, std::uint64_t dpid,
                                   const std::string& name,
                                   const flow::FlowSpec& spec);
  /// The switch directory (/net/switches/<name>) for `dpid` as seen from
  /// `node`, found by id-file scan (names are driver-assigned).
  Result<std::string> switch_dir(std::size_t node, std::uint64_t dpid) const;
  /// Committed flow specs for `dpid` in `node`'s replica, sorted.
  std::vector<std::string> fs_flows(std::size_t node,
                                    std::uint64_t dpid) const;
  /// Hardware flow specs on the switch, sorted — chaos asserts
  /// hw_flows == fs_flows on the surviving primary after settling.
  std::vector<std::string> hw_flows(std::uint64_t dpid) const;

 private:
  struct Node;

  void connect_switch(std::size_t node, std::uint64_t dpid,
                      std::uint64_t epoch);

  HarnessOptions options_;
  net::Scheduler scheduler_;
  net::Network network_;
  dist::Transport transport_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<sw::Switch>> switches_;
  /// tick() counter and, per (node, dpid), the round of the last re-home
  /// dial — the throttle for the owner-reconnect reconciler.
  std::uint64_t round_ = 0;
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> last_dial_;
};

}  // namespace yanc::cluster
