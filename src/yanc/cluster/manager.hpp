// Per-node cluster manager: partitions switch ownership across N
// controller instances and fails shards over when their holder dies —
// with every bit of coordination state living in the (replicated) file
// system, true to the paper's thesis.  No side-channel RPC: nodes see
// each other only through heartbeat files and lease files riding the
// dist op log (docs/ROBUSTNESS.md "Cluster failover").
//
// Layout under `cluster_dir` (default /net/.cluster — a hidden dir the
// netfs schema admits as plain replicated territory):
//
//   nodes/<id>            heartbeat: the node's latest cluster tick
//   shards/<dpid>/lease   "holder=<id> epoch=<n> expiry=<tick>"
//
// Protocol, all tick()-driven so chaos tests are deterministic:
//
//   heartbeat   every tick, write nodes/<id> = current tick.  A node is
//               live iff its heartbeat is within `heartbeat_ttl` ticks.
//   election    a shard whose lease is missing, unparseable, expired,
//               epoch-stale, or held by a dead node is leaderless.  The
//               designated claimant is the live node with the lowest
//               dpid-rotated rank (degenerates to lowest-live-id; the
//               rotation spreads shards across nodes).  It writes a
//               claim {self, max_epoch_seen+1, now+lease_ttl} via
//               atomic replace and waits one tick: if the re-read still
//               shows its claim (LWW settled any race), ownership is
//               confirmed and on_takeover fires with the new epoch.
//   renewal     the holder rewrites expiry when <= lease_ttl/2 remains.
//   fencing     epochs only move up.  A node that reads a lease for its
//               shard with a higher epoch releases immediately
//               (on_release) — its driver egress gate closes before the
//               switch-side epoch fence even has to fire.
//
// Clock: ticks are Lamport-style — each tick() fast-forwards past the
// largest heartbeat observed, so a node revived after a long kill cannot
// claim with timestamps from the past.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "yanc/cluster/lease.hpp"
#include "yanc/dbg/lockdep.hpp"
#include "yanc/obs/metrics.hpp"
#include "yanc/vfs/vfs.hpp"

namespace yanc::cluster {

struct ManagerOptions {
  /// This node's id (also the lease holder id it writes).
  std::uint64_t node_id = 0;
  /// Number of nodes in the cluster (for the rank rotation).
  std::uint64_t cluster_size = 1;
  /// Coordination directory (created on construction if absent).
  std::string cluster_dir = "/net/.cluster";
  /// Ticks a lease lives from claim/renewal.
  std::uint64_t lease_ttl = 8;
  /// Ticks of heartbeat silence before a node counts as dead.  Must be
  /// below lease_ttl or a dead holder's lease could outlive suspicion.
  std::uint64_t heartbeat_ttl = 4;
  /// Wall clock for the failover-latency histogram (defaults to the obs
  /// steady clock; tests inject virtual time).
  std::function<std::uint64_t()> now_ns;
};

class Manager {
 public:
  /// `vfs` must have the replicated tree mounted; the manager only ever
  /// touches paths under options.cluster_dir.
  Manager(std::shared_ptr<vfs::Vfs> vfs, ManagerOptions options);

  const ManagerOptions& options() const noexcept { return options_; }

  /// Fired on confirmed takeover of a shard: (dpid, fencing epoch).  The
  /// harness connects the node's driver to the switch here.  Fired
  /// outside the manager lock.
  void on_takeover(std::function<void(std::uint64_t, std::uint64_t)> fn);
  /// Fired when ownership is lost (higher-epoch lease observed, or our
  /// lease expired unrenewed).  Fired outside the manager lock.
  void on_release(std::function<void(std::uint64_t)> fn);

  /// Declares a shard (registers shards/<dpid>/, usually done by one
  /// node; the directory replicates to the rest, who discover it via
  /// their watch on shards/).
  [[nodiscard]] Status add_shard(std::uint64_t dpid);

  /// One protocol step: heartbeat, scan, elect/renew/release.  The
  /// harness interleaves ticks with replication delivery, so everything
  /// a tick writes is seen by peers some ticks later — the protocol
  /// tolerates that lag by construction (TTLs are several ticks).
  void tick();

  /// Does this node currently hold a confirmed lease for `dpid`?
  /// Drivers use this as their egress gate, so it must be cheap.
  bool owns(std::uint64_t dpid) const;
  /// Epoch of our confirmed lease on `dpid` (0 when not held).
  std::uint64_t epoch_of(std::uint64_t dpid) const;
  /// Every dpid currently owned (shell's cluster map).
  std::vector<std::uint64_t> owned_shards() const;
  /// Current cluster tick (Lamport-merged).
  std::uint64_t now_tick() const;

  /// Registers cluster/{election,takeover,ownership_lost,lease_renew,
  /// lease_expired,lease_event}_total, cluster/failover_latency_ns and
  /// cluster/shards_owned in `registry` (typically vfs->metrics()).
  void bind_metrics(obs::Registry& registry);

 private:
  /// Per-shard view from this node's chair.
  struct Shard {
    /// Last lease read back (nullopt: missing/unparseable).
    std::optional<Lease> lease;
    /// We wrote a claim and are waiting one tick to confirm it.
    bool claiming = false;
    Lease claim;
    /// Confirmed ownership (claim survived the LWW re-read).
    bool owned = false;
    /// Highest epoch ever observed for this shard (fencing floor).
    std::uint64_t max_epoch = 0;
    /// now_ns at the moment the shard was first seen leaderless — the
    /// start of the failover-latency measurement (0 when led).
    std::uint64_t down_since_ns = 0;
  };

  std::string shards_dir() const { return options_.cluster_dir + "/shards"; }
  std::string lease_path(std::uint64_t dpid) const;
  std::string heartbeat_path(std::uint64_t node) const;

  /// Lowest value wins the election for `dpid`; rotating by dpid spreads
  /// shards across nodes while staying a total order per shard.
  std::uint64_t rank_for(std::uint64_t node, std::uint64_t dpid) const;
  bool node_live(std::uint64_t node,
                 const std::map<std::uint64_t, std::uint64_t>& beats) const;
  /// Reads live-node heartbeats (nodes/ dir scan).
  std::map<std::uint64_t, std::uint64_t> read_heartbeats() const;
  /// Discovers shards/<dpid> dirs into shards_ (drains the watch queue;
  /// full readdir rescan on first run or overflow).
  void discover_shards();
  std::uint64_t wall_ns() const;

  std::shared_ptr<vfs::Vfs> vfs_;
  ManagerOptions options_;

  mutable dbg::Mutex<dbg::Rank::cluster_manager> mu_;
  std::uint64_t tick_ = 0;
  std::map<std::uint64_t, Shard> shards_;
  bool scanned_once_ = false;
  std::shared_ptr<vfs::WatchQueue> watch_queue_;
  std::shared_ptr<vfs::WatchHandle> watch_handle_;
  std::function<void(std::uint64_t, std::uint64_t)> takeover_cb_;
  std::function<void(std::uint64_t)> release_cb_;

  obs::Counter* election_metric_ = nullptr;
  obs::Counter* takeover_metric_ = nullptr;
  obs::Counter* lost_metric_ = nullptr;
  obs::Counter* renew_metric_ = nullptr;
  obs::Counter* expired_metric_ = nullptr;
  obs::Counter* lease_event_metric_ = nullptr;
  obs::Histogram* failover_latency_metric_ = nullptr;
  obs::Gauge* shards_owned_metric_ = nullptr;
};

}  // namespace yanc::cluster
