#include "yanc/cluster/lease.hpp"

#include "yanc/util/strings.hpp"

namespace yanc::cluster {

std::string Lease::format() const {
  std::string out;
  out += "holder=" + std::to_string(holder);
  out += " epoch=" + std::to_string(epoch);
  out += " expiry=" + std::to_string(expiry);
  out += '\n';
  return out;
}

Result<Lease> Lease::parse(std::string_view text) {
  auto fields = split_nonempty(trim(text), ' ');
  if (fields.size() != 3) return make_error_code(Errc::invalid_argument);
  const char* keys[3] = {"holder=", "epoch=", "expiry="};
  std::uint64_t values[3];
  for (int i = 0; i < 3; ++i) {
    std::string_view field = fields[i];
    std::string_view key = keys[i];
    if (field.substr(0, key.size()) != key)
      return make_error_code(Errc::invalid_argument);
    auto value = parse_u64(field.substr(key.size()));
    if (!value) return value.error();
    values[i] = *value;
  }
  Lease lease;
  lease.holder = values[0];
  lease.epoch = values[1];
  lease.expiry = values[2];
  return lease;
}

}  // namespace yanc::cluster
