#include "yanc/dist/transport.hpp"

#include <algorithm>
#include <tuple>

#include "yanc/faults/injector.hpp"

namespace yanc::dist {

namespace {
std::pair<Transport::NodeId, Transport::NodeId> ordered(
    Transport::NodeId a, Transport::NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

Transport::NodeId Transport::join(Handler handler) {
  handlers_.push_back(std::move(handler));
  return handlers_.size() - 1;
}

bool Transport::send(NodeId from, NodeId to,
                     std::vector<std::uint8_t> message) {
  if (to >= handlers_.size() || from == to) return false;
  ++messages_;
  bytes_ += message.size();
  LinkFate fate;
  if (filter_) fate = filter_(message);
  if (fate.drop) {
    ++dropped_;
    return false;
  }
  if (partitioned(from, to)) {
    // Queued-for-heal traffic models TCP retransmission; a rolled
    // duplicate would be deduplicated by sequence numbers there, so the
    // partition queue absorbs it.
    queued_[{from, to}].push_back(std::move(message));
    return true;
  }
  if (fate.duplicate) deliver(from, to, message, fate.extra_delay);
  deliver(from, to, std::move(message), fate.extra_delay);
  return true;
}

void Transport::broadcast(NodeId from,
                          const std::vector<std::uint8_t>& message) {
  for (NodeId to = 0; to < handlers_.size(); ++to)
    if (to != from)
      // Best-effort fan-out: each link rolls its own fate, and losses are
      // already tallied in messages_dropped() for the caller to inspect.
      std::ignore = send(from, to, message);
}

void Transport::set_partitioned(NodeId a, NodeId b, bool blocked) {
  blocked_[ordered(a, b)] = blocked;
  if (blocked) return;
  // Healed: flush queued traffic (both directions) in send order.
  for (auto key : {std::pair{a, b}, std::pair{b, a}}) {
    auto it = queued_.find(key);
    if (it == queued_.end()) continue;
    for (auto& message : it->second)
      deliver(key.first, key.second, std::move(message));
    queued_.erase(it);
  }
}

bool Transport::partitioned(NodeId a, NodeId b) const {
  auto it = blocked_.find(ordered(a, b));
  return it != blocked_.end() && it->second;
}

void Transport::deliver(NodeId from, NodeId to,
                        std::vector<std::uint8_t> message,
                        VirtualClock::duration extra_delay) {
  scheduler_.schedule_after(
      latency_ + extra_delay,
      [this, from, to, message = std::move(message)]() {
        handlers_[to](from, message);
      });
}

void attach_faults(Transport& transport,
                   std::shared_ptr<faults::Injector> injector) {
  if (!injector) {
    transport.set_fault_filter(nullptr);
    return;
  }
  VirtualClock::duration latency = transport.latency();
  transport.set_fault_filter(
      [injector, latency](std::vector<std::uint8_t>& message) {
        Transport::LinkFate fate;
        auto wire = injector->decide(faults::Scope::transport, message);
        if (!wire) {
          // Point-to-point replica links have no connection to sever;
          // a rolled disconnect degrades to a drop.
          fate.drop = true;
          return fate;
        }
        fate.drop = wire->drop;
        fate.duplicate = wire->duplicate;
        if (wire->reorder) fate.extra_delay += latency;
        if (wire->delay) fate.extra_delay += 4 * latency;
        return fate;
      });
}

}  // namespace yanc::dist
