#include "yanc/dist/transport.hpp"

#include <tuple>
#include <utility>

#include "yanc/faults/injector.hpp"
#include "yanc/obs/metrics.hpp"

namespace yanc::dist {

Transport::NodeId Transport::join(Handler handler) {
  handlers_.push_back(std::move(handler));
  incarnations_.push_back(0);
  return handlers_.size() - 1;
}

void Transport::leave(NodeId node) {
  if (node >= handlers_.size()) return;
  handlers_[node] = nullptr;
  ++incarnations_[node];
}

void Transport::rejoin(NodeId node, Handler handler) {
  if (node >= handlers_.size()) return;
  handlers_[node] = std::move(handler);
  ++incarnations_[node];
}

bool Transport::alive(NodeId node) const {
  return node < handlers_.size() && handlers_[node] != nullptr;
}

void Transport::bind_metrics(obs::Registry& registry) {
  send_fail_metric_ = registry.counter("dist/send_fail_total");
}

void Transport::note_send_failure() {
  ++send_failures_;
  if (send_fail_metric_) send_fail_metric_->add();
}

bool Transport::send(NodeId from, NodeId to,
                     std::vector<std::uint8_t> message) {
  if (to >= handlers_.size() || from == to) return false;
  if (!handlers_[to]) {
    // Departed destination: the caller addressed a dead node.
    note_send_failure();
    return false;
  }
  ++messages_;
  bytes_ += message.size();
  LinkFate fate;
  if (filter_) fate = filter_(from, to, message);
  if (fate.drop) {
    ++dropped_;
    return false;
  }
  if (partitioned(from, to)) {
    // Queued-for-heal traffic models TCP retransmission; a rolled
    // duplicate would be deduplicated by sequence numbers there, so the
    // partition queue absorbs it.
    queued_[{from, to}].push_back(std::move(message));
    return true;
  }
  if (fate.duplicate) deliver(from, to, message, fate.extra_delay);
  deliver(from, to, std::move(message), fate.extra_delay);
  return true;
}

void Transport::broadcast(NodeId from,
                          const std::vector<std::uint8_t>& message) {
  for (NodeId to = 0; to < handlers_.size(); ++to)
    if (to != from && handlers_[to])
      // Best-effort fan-out: each link rolls its own fate, and losses are
      // already tallied in messages_dropped() for the caller to inspect.
      std::ignore = send(from, to, message);
}

void Transport::set_partitioned(NodeId a, NodeId b, bool blocked) {
  set_partitioned_oneway(a, b, blocked);
  set_partitioned_oneway(b, a, blocked);
}

void Transport::set_partitioned_oneway(NodeId from, NodeId to,
                                       bool blocked) {
  blocked_[{from, to}] = blocked;
  if (blocked) return;
  // Healed: flush this direction's queued traffic in send order.
  auto it = queued_.find({from, to});
  if (it == queued_.end()) return;
  auto pending = std::move(it->second);
  queued_.erase(it);
  for (auto& message : pending) deliver(from, to, std::move(message));
}

bool Transport::partitioned(NodeId from, NodeId to) const {
  auto it = blocked_.find({from, to});
  return it != blocked_.end() && it->second;
}

void Transport::deliver(NodeId from, NodeId to,
                        std::vector<std::uint8_t> message,
                        VirtualClock::duration extra_delay) {
  bool delayed = extra_delay > VirtualClock::duration::zero();
  std::uint64_t incarnation = incarnations_[to];
  scheduler_.schedule_after(
      latency_ + extra_delay,
      [this, from, to, delayed, incarnation,
       message = std::move(message)]() {
        // Delivery-time lifecycle checks: the destination may have left
        // or re-registered while the message was in flight, and a
        // fault-delayed message may have been overtaken by a partition.
        // Such traffic dies on the wire instead of resurrecting on a link
        // that no longer exists.
        if (!alive(to) || incarnations_[to] != incarnation ||
            (delayed && partitioned(from, to))) {
          note_send_failure();
          return;
        }
        handlers_[to](from, message);
      });
}

void attach_faults(Transport& transport,
                   std::shared_ptr<faults::Injector> injector) {
  if (!injector) {
    transport.set_fault_filter(nullptr);
    return;
  }
  VirtualClock::duration latency = transport.latency();
  transport.set_fault_filter(
      [injector, latency](Transport::NodeId from, Transport::NodeId to,
                          std::vector<std::uint8_t>& message) {
        Transport::LinkFate fate;
        if (injector->plan(faults::Scope::transport)
                .is_partitioned(from, to)) {
          // Planned directed cut: the link is gone, not congested — eat
          // the message rather than queueing it for a heal.
          fate.drop = true;
          return fate;
        }
        auto wire = injector->decide(faults::Scope::transport, message);
        if (!wire) {
          // Point-to-point replica links have no connection to sever;
          // a rolled disconnect degrades to a drop.
          fate.drop = true;
          return fate;
        }
        fate.drop = wire->drop;
        fate.duplicate = wire->duplicate;
        if (wire->reorder) fate.extra_delay += latency;
        if (wire->delay) fate.extra_delay += 4 * latency;
        return fate;
      });
}

}  // namespace yanc::dist
