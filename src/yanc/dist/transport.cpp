#include "yanc/dist/transport.hpp"

#include <algorithm>

namespace yanc::dist {

namespace {
std::pair<Transport::NodeId, Transport::NodeId> ordered(
    Transport::NodeId a, Transport::NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

Transport::NodeId Transport::join(Handler handler) {
  handlers_.push_back(std::move(handler));
  return handlers_.size() - 1;
}

void Transport::send(NodeId from, NodeId to,
                     std::vector<std::uint8_t> message) {
  if (to >= handlers_.size() || from == to) return;
  ++messages_;
  bytes_ += message.size();
  if (partitioned(from, to)) {
    queued_[{from, to}].push_back(std::move(message));
    return;
  }
  deliver(from, to, std::move(message));
}

void Transport::broadcast(NodeId from,
                          const std::vector<std::uint8_t>& message) {
  for (NodeId to = 0; to < handlers_.size(); ++to)
    if (to != from) send(from, to, message);
}

void Transport::set_partitioned(NodeId a, NodeId b, bool blocked) {
  blocked_[ordered(a, b)] = blocked;
  if (blocked) return;
  // Healed: flush queued traffic (both directions) in send order.
  for (auto key : {std::pair{a, b}, std::pair{b, a}}) {
    auto it = queued_.find(key);
    if (it == queued_.end()) continue;
    for (auto& message : it->second)
      deliver(key.first, key.second, std::move(message));
    queued_.erase(it);
  }
}

bool Transport::partitioned(NodeId a, NodeId b) const {
  auto it = blocked_.find(ordered(a, b));
  return it != blocked_.end() && it->second;
}

void Transport::deliver(NodeId from, NodeId to,
                        std::vector<std::uint8_t> message) {
  scheduler_.schedule_after(
      latency_, [this, from, to, message = std::move(message)]() {
        handlers_[to](from, message);
      });
}

}  // namespace yanc::dist
