// Simulated cluster transport for the distributed file system (§6).
//
// Nodes exchange serialized operation records over point-to-point links
// with configurable latency; pairs of nodes can be partitioned, in which
// case traffic queues and is delivered in order when the partition heals
// (modelling a network that drops TCP into retransmission, not one that
// loses committed state).
//
// A fault filter adds the lossy mode the partition model deliberately
// lacks: per-message drop/duplicate/extra-delay decided by an installed
// filter (typically faults::Injector via attach_faults), so replicas can
// genuinely diverge — the failure ReplicatedYancFs's anti-entropy pass
// exists to repair.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "yanc/net/simnet.hpp"

namespace yanc::faults {
class Injector;
}

namespace yanc::dist {

class Transport {
 public:
  using NodeId = std::size_t;
  using Handler =
      std::function<void(NodeId from, const std::vector<std::uint8_t>&)>;

  Transport(net::Scheduler& scheduler, VirtualClock::duration latency)
      : scheduler_(scheduler), latency_(latency) {}

  /// Adds a node; its handler runs for every delivered message.
  NodeId join(Handler handler);
  std::size_t size() const noexcept { return handlers_.size(); }

  /// Hands one message to the link.  Returns false when it never made it
  /// onto the wire — unknown destination, self-send, or eaten by the fault
  /// filter; messages queued behind a partition count as sent (they flush
  /// on heal, modelling TCP retransmission).  Callers that fire and forget
  /// must say so at the call site; senders with consistency obligations
  /// (e.g. replication) decide whether a repair pass covers the loss.
  [[nodiscard]] bool send(NodeId from, NodeId to,
                          std::vector<std::uint8_t> message);
  void broadcast(NodeId from, const std::vector<std::uint8_t>& message);

  /// Per-message fate on a lossy link.  The filter may corrupt the
  /// message in place; `extra_delay` is added on top of the link latency.
  struct LinkFate {
    bool drop = false;
    bool duplicate = false;
    VirtualClock::duration extra_delay{};
  };
  using FaultFilter = std::function<LinkFate(std::vector<std::uint8_t>&)>;

  /// Installs (or, with nullptr, removes) the lossy mode.  Runs once per
  /// destination — a broadcast rolls fate independently per link, like
  /// independent physical paths.
  void set_fault_filter(FaultFilter filter) { filter_ = std::move(filter); }
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Blocks (or heals) the pair; healing flushes queued traffic in order.
  void set_partitioned(NodeId a, NodeId b, bool blocked);
  bool partitioned(NodeId a, NodeId b) const;

  VirtualClock::duration latency() const noexcept { return latency_; }
  /// The scheduler's virtual clock (replication lag is measured on it).
  const VirtualClock& clock() const noexcept { return scheduler_.clock(); }
  std::uint64_t messages_sent() const noexcept { return messages_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }

 private:
  void deliver(NodeId from, NodeId to, std::vector<std::uint8_t> message,
               VirtualClock::duration extra_delay = {});

  net::Scheduler& scheduler_;
  VirtualClock::duration latency_;
  std::vector<Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, bool> blocked_;
  std::map<std::pair<NodeId, NodeId>,
           std::vector<std::vector<std::uint8_t>>>
      queued_;
  FaultFilter filter_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Drives `transport`'s fault filter from `injector`'s transport-scope
/// plan: drop/duplicate/corrupt map directly; reorder becomes one extra
/// link latency (later sends overtake), delay becomes four.
void attach_faults(Transport& transport,
                   std::shared_ptr<faults::Injector> injector);

}  // namespace yanc::dist
