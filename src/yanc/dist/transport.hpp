// Simulated cluster transport for the distributed file system (§6).
//
// Nodes exchange serialized operation records over point-to-point links
// with configurable latency; pairs of nodes can be partitioned, in which
// case traffic queues and is delivered in order when the partition heals
// (modelling a network that drops TCP into retransmission, not one that
// loses committed state).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "yanc/net/simnet.hpp"

namespace yanc::dist {

class Transport {
 public:
  using NodeId = std::size_t;
  using Handler =
      std::function<void(NodeId from, const std::vector<std::uint8_t>&)>;

  Transport(net::Scheduler& scheduler, VirtualClock::duration latency)
      : scheduler_(scheduler), latency_(latency) {}

  /// Adds a node; its handler runs for every delivered message.
  NodeId join(Handler handler);
  std::size_t size() const noexcept { return handlers_.size(); }

  void send(NodeId from, NodeId to, std::vector<std::uint8_t> message);
  void broadcast(NodeId from, const std::vector<std::uint8_t>& message);

  /// Blocks (or heals) the pair; healing flushes queued traffic in order.
  void set_partitioned(NodeId a, NodeId b, bool blocked);
  bool partitioned(NodeId a, NodeId b) const;

  VirtualClock::duration latency() const noexcept { return latency_; }
  /// The scheduler's virtual clock (replication lag is measured on it).
  const VirtualClock& clock() const noexcept { return scheduler_.clock(); }
  std::uint64_t messages_sent() const noexcept { return messages_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }

 private:
  void deliver(NodeId from, NodeId to, std::vector<std::uint8_t> message);

  net::Scheduler& scheduler_;
  VirtualClock::duration latency_;
  std::vector<Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, bool> blocked_;
  std::map<std::pair<NodeId, NodeId>,
           std::vector<std::vector<std::uint8_t>>>
      queued_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace yanc::dist
