// Simulated cluster transport for the distributed file system (§6).
//
// Nodes exchange serialized operation records over point-to-point links
// with configurable latency; pairs of nodes can be partitioned, in which
// case traffic queues and is delivered in order when the partition heals
// (modelling a network that drops TCP into retransmission, not one that
// loses committed state).
//
// A fault filter adds the lossy mode the partition model deliberately
// lacks: per-message drop/duplicate/extra-delay decided by an installed
// filter (typically faults::Injector via attach_faults), so replicas can
// genuinely diverge — the failure ReplicatedYancFs's anti-entropy pass
// exists to repair.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "yanc/net/simnet.hpp"

namespace yanc::faults {
class Injector;
}

namespace yanc::obs {
class Counter;
class Registry;
}  // namespace yanc::obs

namespace yanc::dist {

class Transport {
 public:
  using NodeId = std::size_t;
  using Handler =
      std::function<void(NodeId from, const std::vector<std::uint8_t>&)>;

  Transport(net::Scheduler& scheduler, VirtualClock::duration latency)
      : scheduler_(scheduler), latency_(latency) {}

  /// Adds a node; its handler runs for every delivered message.
  NodeId join(Handler handler);
  std::size_t size() const noexcept { return handlers_.size(); }

  /// Removes a node: its handler is torn down and every in-flight or
  /// fault-delayed message addressed to it dies on the wire instead of
  /// being delivered (counted in send_failures()).  The slot stays
  /// reserved for a later rejoin() under the same id.
  void leave(NodeId node);
  /// Re-registers a departed node under a new incarnation.  Messages put
  /// on the wire before the rejoin belong to the old incarnation and are
  /// dropped at delivery time rather than handed to the fresh handler.
  void rejoin(NodeId node, Handler handler);
  bool alive(NodeId node) const;

  /// Hands one message to the link.  Returns false when it never made it
  /// onto the wire — unknown destination, self-send, or eaten by the fault
  /// filter; messages queued behind a partition count as sent (they flush
  /// on heal, modelling TCP retransmission).  Callers that fire and forget
  /// must say so at the call site; senders with consistency obligations
  /// (e.g. replication) decide whether a repair pass covers the loss.
  [[nodiscard]] bool send(NodeId from, NodeId to,
                          std::vector<std::uint8_t> message);
  void broadcast(NodeId from, const std::vector<std::uint8_t>& message);

  /// Per-message fate on a lossy link.  The filter may corrupt the
  /// message in place; `extra_delay` is added on top of the link latency.
  struct LinkFate {
    bool drop = false;
    bool duplicate = false;
    VirtualClock::duration extra_delay{};
  };
  using FaultFilter =
      std::function<LinkFate(NodeId from, NodeId to,
                             std::vector<std::uint8_t>&)>;

  /// Installs (or, with nullptr, removes) the lossy mode.  Runs once per
  /// destination — a broadcast rolls fate independently per link, like
  /// independent physical paths.
  void set_fault_filter(FaultFilter filter) { filter_ = std::move(filter); }
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Blocks (or heals) both directions of the pair; healing flushes
  /// queued traffic in order.
  void set_partitioned(NodeId a, NodeId b, bool blocked);
  /// Directed partition: blocks (or heals) only from->to traffic, leaving
  /// the reverse direction alive — the asymmetric failure that provokes
  /// split-brain in the cluster chaos suite (docs/ROBUSTNESS.md).
  void set_partitioned_oneway(NodeId from, NodeId to, bool blocked);
  /// True when from->to traffic is currently blocked.  Directed query; a
  /// symmetric set_partitioned blocks both directions.
  bool partitioned(NodeId from, NodeId to) const;

  /// Messages that died at delivery time: destination left or
  /// re-registered while they were in flight, a delay fault held them
  /// across a partition, or a send addressed a departed node.
  std::uint64_t send_failures() const noexcept { return send_failures_; }
  /// Registers dist/send_fail_total (surfaced by StatsFs under
  /// /yanc/.stats/dist/).
  void bind_metrics(obs::Registry& registry);

  VirtualClock::duration latency() const noexcept { return latency_; }
  /// The scheduler's virtual clock (replication lag is measured on it).
  const VirtualClock& clock() const noexcept { return scheduler_.clock(); }
  std::uint64_t messages_sent() const noexcept { return messages_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }

 private:
  void deliver(NodeId from, NodeId to, std::vector<std::uint8_t> message,
               VirtualClock::duration extra_delay = {});
  void note_send_failure();

  net::Scheduler& scheduler_;
  VirtualClock::duration latency_;
  std::vector<Handler> handlers_;
  /// Bumped on every leave/rejoin; deliveries captured under an older
  /// incarnation are dropped (a restarted node must not receive traffic
  /// addressed to its previous life).
  std::vector<std::uint64_t> incarnations_;
  std::map<std::pair<NodeId, NodeId>, bool> blocked_;
  std::map<std::pair<NodeId, NodeId>,
           std::vector<std::vector<std::uint8_t>>>
      queued_;
  FaultFilter filter_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t send_failures_ = 0;
  obs::Counter* send_fail_metric_ = nullptr;
};

/// Drives `transport`'s fault filter from `injector`'s transport-scope
/// plan: drop/duplicate/corrupt map directly; reorder becomes one extra
/// link latency (later sends overtake), delay becomes four.  Planned
/// directed partitions (`partition=a->b`) eat matching messages on the
/// wire — a hard link cut, unlike set_partitioned's queue-and-heal.
void attach_faults(Transport& transport,
                   std::shared_ptr<faults::Injector> injector);

}  // namespace yanc::dist
