#include "yanc/dist/replicated.hpp"

#include <tuple>

#include "yanc/util/bytes.hpp"
#include "yanc/util/log.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::dist {

using vfs::Credentials;
using vfs::NodeId;

struct ReplicatedYancFs::Op {
  enum class Kind : std::uint8_t {
    mkdir,
    create,
    write,
    truncate,
    unlink,
    rmdir,
    rename,
    symlink,
    chmod,
    chown,
    setxattr,
    removexattr,
    anti_entropy,  // data = encoded Snapshot
  };
  Kind kind = Kind::mkdir;
  bool via_primary = false;  // strict op awaiting primary fan-out
  std::uint64_t ts = 0;      // Lamport timestamp
  std::uint64_t origin = 0;
  std::uint64_t sent_ns = 0;  // origin's virtual time at emit (lag metric)
  std::string path;
  std::string aux;   // rename destination / symlink target / xattr name
  std::string data;  // write payload / xattr value
  std::uint64_t offset = 0;  // write offset / truncate size
  std::uint32_t mode = 0;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;

  std::vector<std::uint8_t> encode() const {
    BufWriter w;
    w.u8(static_cast<std::uint8_t>(kind));
    w.u8(via_primary ? 1 : 0);
    w.u64(ts);
    w.u64(origin);
    w.u64(sent_ns);
    w.u64(offset);
    w.u32(mode);
    w.u32(uid);
    w.u32(gid);
    for (const std::string* s : {&path, &aux, &data}) {
      w.u32(static_cast<std::uint32_t>(s->size()));
      w.bytes({reinterpret_cast<const std::uint8_t*>(s->data()), s->size()});
    }
    return w.take();
  }

  static Result<Op> decode(const std::vector<std::uint8_t>& bytes) {
    BufReader r(bytes);
    Op op;
    op.kind = static_cast<Kind>(r.u8());
    op.via_primary = r.u8() != 0;
    op.ts = r.u64();
    op.origin = r.u64();
    op.sent_ns = r.u64();
    op.offset = r.u64();
    op.mode = r.u32();
    op.uid = r.u32();
    op.gid = r.u32();
    for (std::string* s : {&op.path, &op.aux, &op.data}) {
      std::uint32_t len = r.u32();
      auto raw = r.bytes(len);
      s->assign(raw.begin(), raw.end());
    }
    if (!r.ok()) return Errc::protocol_error;
    return op;
  }
};

// A Snapshot is one replica's view of its entire tree, exchanged during
// anti-entropy: preorder entries (parents before children) with the
// last-writer version each path was created/written at, plus the
// tombstones of everything deleted.
struct ReplicatedYancFs::Snapshot {
  struct Entry {
    std::uint8_t type = 0;  // 0 = dir, 1 = file, 2 = symlink
    std::string path;
    std::uint64_t ts = 0;
    std::uint64_t origin = 0;
    std::string data;  // file content / symlink target
  };
  std::vector<Entry> entries;
  std::vector<std::pair<std::string, Version>> tombstones;

  std::vector<std::uint8_t> encode() const {
    BufWriter w;
    auto put_string = [&w](const std::string& s) {
      w.u32(static_cast<std::uint32_t>(s.size()));
      w.bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    };
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      w.u8(e.type);
      w.u64(e.ts);
      w.u64(e.origin);
      put_string(e.path);
      put_string(e.data);
    }
    w.u32(static_cast<std::uint32_t>(tombstones.size()));
    for (const auto& [path, version] : tombstones) {
      w.u64(version.first);
      w.u64(version.second);
      put_string(path);
    }
    return w.take();
  }

  static Result<Snapshot> decode(const std::string& bytes) {
    BufReader r({reinterpret_cast<const std::uint8_t*>(bytes.data()),
                 bytes.size()});
    auto get_string = [&r]() {
      std::uint32_t len = r.u32();
      auto raw = r.bytes(len);
      return std::string(raw.begin(), raw.end());
    };
    Snapshot snap;
    std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      Entry e;
      e.type = r.u8();
      e.ts = r.u64();
      e.origin = r.u64();
      e.path = get_string();
      e.data = get_string();
      snap.entries.push_back(std::move(e));
    }
    std::uint32_t t = r.u32();
    for (std::uint32_t i = 0; i < t && r.ok(); ++i) {
      Version version;
      version.first = r.u64();
      version.second = r.u64();
      snap.tombstones.emplace_back(get_string(), version);
    }
    if (!r.ok()) return Errc::protocol_error;
    return snap;
  }
};

namespace {

std::pair<std::string, std::string> dir_and_leaf(const std::string& path) {
  auto slash = path.rfind('/');
  if (slash == std::string::npos || slash == 0)
    return {"/", path.substr(slash == std::string::npos ? 0 : 1)};
  return {path.substr(0, slash), path.substr(slash + 1)};
}

bool covers(const std::string& ancestor, const std::string& path) {
  return path == ancestor ||
         (path.size() > ancestor.size() && path.compare(0, ancestor.size(),
                                                        ancestor) == 0 &&
          path[ancestor.size()] == '/');
}

}  // namespace

ReplicatedYancFs::ReplicatedYancFs(ReplicaOptions options)
    : options_(options) {}

void ReplicatedYancFs::attach(Transport* transport, Transport::NodeId self,
                              Transport::NodeId primary) {
  transport_ = transport;
  self_ = self;
  primary_ = primary;
}

Transport::NodeId ReplicatedYancFs::join_cluster(Transport& transport,
                                                 Transport::NodeId primary) {
  auto id = transport.join(
      [this](Transport::NodeId from, const std::vector<std::uint8_t>& bytes) {
        handle_message(from, bytes);
      });
  attach(&transport, id, primary);
  return id;
}

void ReplicatedYancFs::rejoin_cluster() {
  if (!transport_) return;
  transport_->rejoin(self_, [this](Transport::NodeId from,
                                   const std::vector<std::uint8_t>& bytes) {
    handle_message(from, bytes);
  });
}

Mode ReplicatedYancFs::mode_for(NodeId node) const {
  auto value = nearest_xattr(node, kConsistencyXattr);
  if (!value) return options_.default_mode;
  std::string text(value->begin(), value->end());
  auto trimmed = trim(text);
  if (trimmed == "eventual") return Mode::eventual;
  if (trimmed == "strict") return Mode::strict;
  return options_.default_mode;
}

Result<NodeId> ReplicatedYancFs::resolve_local(const std::string& path) {
  NodeId node = root();
  for (const auto& comp : split_nonempty(path, '/')) {
    auto next = lookup(node, comp);
    if (!next) return next.error();
    node = *next;
  }
  return node;
}

void ReplicatedYancFs::bind_metrics(obs::Registry& registry) {
  apply_metric_ = registry.counter("dist/replication_apply_total");
  conflict_metric_ = registry.counter("dist/replication_conflict_total");
  lag_metric_ = registry.histogram("dist/replication_lag_ns");
  ae_round_metric_ = registry.counter("dist/anti_entropy_round_total");
  ae_repair_metric_ = registry.counter("dist/anti_entropy_repair_total");
}

void ReplicatedYancFs::emit(Op op) {
  if (!transport_ || applying_remote_) return;
  op.ts = ++lamport_;
  op.origin = self_;
  op.sent_ns = transport_->clock().now_ns();
  ++local_ops_;
  note_version(op);

  // Consistency is chosen by the nearest xattr above the op's target.
  Mode mode = options_.default_mode;
  if (auto node = resolve_local(op.path))
    mode = mode_for(*node);
  else if (auto parent = resolve_local(dir_and_leaf(op.path).first))
    mode = mode_for(*parent);

  if (mode == Mode::strict && self_ != primary_) {
    // Synchronous routing through the primary: the caller pays the round
    // trip (modelled as accounted virtual time; the op itself travels the
    // simulated link so remote visibility is still ordered by arrival).
    sync_delay_ns_ += 2 * static_cast<std::uint64_t>(
                              transport_->latency().count());
    op.via_primary = true;
    // A filter-eaten op here diverges this replica until the next
    // anti-entropy round repairs it; that repair path is the point.
    std::ignore = transport_->send(self_, primary_, op.encode());
    return;
  }
  transport_->broadcast(self_, op.encode());
}

void ReplicatedYancFs::handle_message(Transport::NodeId from,
                                      const std::vector<std::uint8_t>& bytes) {
  auto op = Op::decode(bytes);
  if (!op) {
    log_error("dist", "undecodable replication op");
    return;
  }
  lamport_ = std::max(lamport_, op->ts);
  if (op->kind == Op::Kind::anti_entropy) {
    auto snap = Snapshot::decode(op->data);
    if (snap)
      apply_anti_entropy(*snap);
    else
      log_error("dist", "undecodable anti-entropy snapshot");
    return;
  }
  note_version(*op);
  bool applied = apply(*op);
  if (applied) {
    ++remote_ops_;
    if (apply_metric_) apply_metric_->add();
    if (lag_metric_ && transport_) {
      std::uint64_t now = transport_->clock().now_ns();
      if (now >= op->sent_ns) lag_metric_->record(now - op->sent_ns);
    }
  } else {
    ++conflicts_;
    if (conflict_metric_) conflict_metric_->add();
  }
  (void)from;

  // Primary fan-out for strict ops that were routed through us.
  if (op->via_primary && self_ == primary_) {
    Op fanned = *op;
    fanned.via_primary = false;
    for (Transport::NodeId node = 0; node < transport_->size(); ++node)
      if (node != self_ && node != op->origin)
        // Same deal as broadcast: per-link loss is anti-entropy's job.
        std::ignore = transport_->send(self_, node, fanned.encode());
  }
}

bool ReplicatedYancFs::apply(const Op& op) {
  applying_remote_ = true;
  auto done = [&](bool ok) {
    applying_remote_ = false;
    return ok;
  };
  Credentials root_creds;
  auto [dir, leaf] = dir_and_leaf(op.path);

  switch (op.kind) {
    case Op::Kind::mkdir: {
      auto parent = resolve_local(dir);
      if (!parent) return done(false);
      auto r = mkdir(*parent, leaf, op.mode, root_creds);
      return done(r.ok() || r.error() == make_error_code(Errc::exists));
    }
    case Op::Kind::create: {
      auto parent = resolve_local(dir);
      if (!parent) return done(false);
      auto r = create(*parent, leaf, op.mode, root_creds);
      return done(r.ok() || r.error() == make_error_code(Errc::exists));
    }
    case Op::Kind::write:
    case Op::Kind::truncate: {
      // Last-writer-wins on content: a concurrently newer local write
      // (greater ts, or equal ts from a higher node id) survives.
      auto it = write_versions_.find(op.path);
      if (it != write_versions_.end() &&
          it->second > std::make_pair(op.ts, op.origin))
        return done(false);
      auto node = resolve_local(op.path);
      if (!node) return done(false);
      bool ok;
      if (op.kind == Op::Kind::write)
        ok = write(*node, op.offset, op.data, root_creds).ok();
      else
        ok = !truncate(*node, op.offset, root_creds);
      if (ok) write_versions_[op.path] = {op.ts, op.origin};
      return done(ok);
    }
    case Op::Kind::unlink: {
      auto parent = resolve_local(dir);
      if (!parent) return done(false);
      auto ec = unlink(*parent, leaf, root_creds);
      return done(!ec || ec == make_error_code(Errc::not_found));
    }
    case Op::Kind::rmdir: {
      auto parent = resolve_local(dir);
      if (!parent) return done(false);
      auto ec = rmdir(*parent, leaf, root_creds);
      return done(!ec || ec == make_error_code(Errc::not_found));
    }
    case Op::Kind::rename: {
      auto [to_dir, to_leaf] = dir_and_leaf(op.aux);
      auto from_parent = resolve_local(dir);
      auto to_parent = resolve_local(to_dir);
      if (!from_parent || !to_parent) return done(false);
      return done(
          !rename(*from_parent, leaf, *to_parent, to_leaf, root_creds));
    }
    case Op::Kind::symlink: {
      auto parent = resolve_local(dir);
      if (!parent) return done(false);
      auto r = symlink(*parent, leaf, op.aux, root_creds);
      return done(r.ok() || r.error() == make_error_code(Errc::exists));
    }
    case Op::Kind::chmod: {
      auto node = resolve_local(op.path);
      if (!node) return done(false);
      return done(!chmod(*node, op.mode, root_creds));
    }
    case Op::Kind::chown: {
      auto node = resolve_local(op.path);
      if (!node) return done(false);
      return done(!chown(*node, op.uid, op.gid, root_creds));
    }
    case Op::Kind::setxattr: {
      auto node = resolve_local(op.path);
      if (!node) return done(false);
      std::vector<std::uint8_t> value(op.data.begin(), op.data.end());
      return done(!setxattr(*node, op.aux, std::move(value), root_creds));
    }
    case Op::Kind::removexattr: {
      auto node = resolve_local(op.path);
      if (!node) return done(false);
      auto ec = removexattr(*node, op.aux, root_creds);
      return done(!ec || ec == make_error_code(Errc::not_found));
    }
    case Op::Kind::anti_entropy:
      break;  // dispatched in handle_message, never reaches apply()
  }
  return done(false);
}

// --- anti-entropy --------------------------------------------------------------

void ReplicatedYancFs::note_version(const Op& op) {
  Version version{op.ts, op.origin};
  switch (op.kind) {
    case Op::Kind::mkdir:
    case Op::Kind::create:
    case Op::Kind::symlink:
    case Op::Kind::write:
    case Op::Kind::truncate: {
      auto& v = write_versions_[op.path];
      v = std::max(v, version);
      break;
    }
    case Op::Kind::unlink:
    case Op::Kind::rmdir:
      record_tombstone(op.path, version);
      break;
    case Op::Kind::rename: {
      // Content knowledge follows the subtree to its new name; the old
      // name gets a tombstone so stale copies of it stay dead.
      std::vector<std::pair<std::string, Version>> moved;
      if (auto it = write_versions_.find(op.path);
          it != write_versions_.end()) {
        moved.emplace_back(op.aux, it->second);
        write_versions_.erase(it);
      }
      std::string prefix = op.path + "/";
      for (auto it = write_versions_.lower_bound(prefix);
           it != write_versions_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;) {
        moved.emplace_back(op.aux + it->first.substr(op.path.size()),
                           it->second);
        it = write_versions_.erase(it);
      }
      record_tombstone(op.path, version);
      for (auto& [path, v] : moved) {
        auto& slot = write_versions_[path];
        slot = std::max(slot, v);
      }
      auto& dest = write_versions_[op.aux];
      dest = std::max(dest, version);
      break;
    }
    default:
      break;  // metadata-only ops don't move the LWW needle
  }
}

ReplicatedYancFs::Version ReplicatedYancFs::version_of(
    const std::string& path) const {
  auto it = write_versions_.find(path);
  return it == write_versions_.end() ? Version{0, 0} : it->second;
}

ReplicatedYancFs::Version ReplicatedYancFs::newest_in_subtree(
    const std::string& path) const {
  Version newest = version_of(path);
  std::string prefix = path + "/";
  for (auto it = write_versions_.lower_bound(prefix);
       it != write_versions_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    newest = std::max(newest, it->second);
  return newest;
}

bool ReplicatedYancFs::tombstoned(const std::string& path,
                                  Version version) const {
  for (const auto& [dead, dead_version] : tombstones_)
    if (covers(dead, path) && !(dead_version < version)) return true;
  return false;
}

void ReplicatedYancFs::record_tombstone(const std::string& path,
                                        Version version) {
  auto [it, inserted] = tombstones_.try_emplace(path, version);
  if (!inserted && it->second < version) it->second = version;
  // The deletion supersedes any content knowledge it is newer than;
  // strictly newer writes survive (they out-rank the tombstone).
  if (auto wit = write_versions_.find(path);
      wit != write_versions_.end() && wit->second <= version)
    write_versions_.erase(wit);
  std::string prefix = path + "/";
  for (auto wit = write_versions_.lower_bound(prefix);
       wit != write_versions_.end() &&
       wit->first.compare(0, prefix.size(), prefix) == 0;)
    wit = wit->second <= version ? write_versions_.erase(wit)
                                 : std::next(wit);
}

void ReplicatedYancFs::snapshot_subtree(vfs::NodeId node,
                                        const std::string& path,
                                        Snapshot& snap) {
  auto st = getattr(node);
  if (!st) return;
  if (!path.empty()) {
    Snapshot::Entry entry;
    entry.path = path;
    auto version = version_of(path);
    entry.ts = version.first;
    entry.origin = version.second;
    if (st->is_dir()) {
      entry.type = 0;
    } else if (st->is_symlink()) {
      entry.type = 2;
      if (auto target = readlink(node)) entry.data = *target;
    } else {
      entry.type = 1;
      if (auto content = read(node, 0, st->size, Credentials::root()))
        entry.data = std::move(*content);
    }
    snap.entries.push_back(std::move(entry));
  }
  if (!st->is_dir()) return;
  auto children = readdir(node);
  if (!children) return;
  for (const auto& child : *children)
    snapshot_subtree(child.node,
                     (path.empty() ? "" : path) + "/" + child.name, snap);
}

void ReplicatedYancFs::send_anti_entropy() {
  if (!transport_) return;
  Snapshot snap;
  snapshot_subtree(root(), "", snap);
  for (const auto& [path, version] : tombstones_)
    snap.tombstones.emplace_back(path, version);
  Op op;
  op.kind = Op::Kind::anti_entropy;
  op.ts = ++lamport_;
  op.origin = self_;
  op.sent_ns = transport_->clock().now_ns();
  auto bytes = snap.encode();
  op.data.assign(bytes.begin(), bytes.end());
  if (ae_round_metric_) ae_round_metric_->add();
  transport_->broadcast(self_, op.encode());
}

void ReplicatedYancFs::apply_anti_entropy(const Snapshot& snap) {
  applying_remote_ = true;
  // Deletions first: adopt tombstones we have not seen, and tear down any
  // local subtree the tombstone out-ranks.  A strictly newer local write
  // survives — our own next broadcast re-teaches it to the cluster.
  for (const auto& [path, version] : snap.tombstones) {
    bool existed = resolve_local(path).ok();
    record_tombstone(path, version);
    if (existed && !(newest_in_subtree(path) > version)) {
      remove_subtree_local(path);
      ++repairs_;
      if (ae_repair_metric_) ae_repair_metric_->add();
    }
  }
  // Then creations and content, parents before children (preorder).
  for (const auto& entry : snap.entries) {
    Version version{entry.ts, entry.origin};
    if (tombstoned(entry.path, version)) continue;
    merge_entry_local(entry.type, entry.path, version, entry.data);
  }
  applying_remote_ = false;
}

void ReplicatedYancFs::remove_subtree_local(const std::string& path) {
  auto node = resolve_local(path);
  if (!node) return;
  auto st = getattr(*node);
  if (!st) return;
  if (st->is_dir()) {
    if (auto children = readdir(*node))
      for (const auto& child : *children)
        remove_subtree_local(path + "/" + child.name);
  }
  auto [dir, leaf] = dir_and_leaf(path);
  auto parent = resolve_local(dir);
  if (!parent) return;
  Credentials root_creds;
  if (st->is_dir())
    (void)rmdir(*parent, leaf, root_creds);
  else
    (void)unlink(*parent, leaf, root_creds);
}

void ReplicatedYancFs::merge_entry_local(std::uint8_t type,
                                         const std::string& path,
                                         Version version,
                                         const std::string& data) {
  Credentials root_creds;
  Version local = version_of(path);
  if (auto node = resolve_local(path)) {
    if (!(version > local)) return;  // ours is as new or newer
    if (type == 1) {
      // Adopt the newer content wholesale (anti-entropy ships whole
      // files, not deltas).
      if (truncate(*node, 0, root_creds)) return;
      if (!data.empty() && !write(*node, 0, data, root_creds)) return;
      ++repairs_;
      if (ae_repair_metric_) ae_repair_metric_->add();
    }
    write_versions_[path] = version;  // dirs/symlinks: version only
    return;
  }
  // Missing locally: recreate it.  The parent exists already because
  // snapshot entries arrive in preorder (and a missing parent means it
  // was tombstoned, in which case this child was skipped too).
  auto [dir, leaf] = dir_and_leaf(path);
  auto parent = resolve_local(dir);
  if (!parent) return;
  bool created = false;
  switch (type) {
    case 0:
      created = mkdir(*parent, leaf, 0755, root_creds).ok();
      break;
    case 1: {
      auto node = create(*parent, leaf, 0644, root_creds);
      if (node) {
        created = true;
        if (!data.empty()) (void)write(*node, 0, data, root_creds);
      }
      break;
    }
    case 2:
      created = symlink(*parent, leaf, data, root_creds).ok();
      break;
  }
  if (!created) return;
  write_versions_[path] = std::max(local, version);
  ++repairs_;
  if (ae_repair_metric_) ae_repair_metric_->add();
}

// --- mutating overrides -------------------------------------------------------

Result<NodeId> ReplicatedYancFs::mkdir(NodeId parent, const std::string& name,
                                       std::uint32_t mode,
                                       const Credentials& creds) {
  auto parent_path = path_of(parent);
  auto r = YancFs::mkdir(parent, name, mode, creds);
  if (r && !applying_remote_ && parent_path) {
    Op op;
    op.kind = Op::Kind::mkdir;
    op.path = (*parent_path == "/" ? "" : *parent_path) + "/" + name;
    op.mode = mode;
    emit(std::move(op));
  }
  return r;
}

Result<NodeId> ReplicatedYancFs::create(NodeId parent, const std::string& name,
                                        std::uint32_t mode,
                                        const Credentials& creds) {
  auto parent_path = path_of(parent);
  auto r = YancFs::create(parent, name, mode, creds);
  if (r && !applying_remote_ && parent_path) {
    Op op;
    op.kind = Op::Kind::create;
    op.path = (*parent_path == "/" ? "" : *parent_path) + "/" + name;
    op.mode = mode;
    emit(std::move(op));
  }
  return r;
}

Result<std::uint64_t> ReplicatedYancFs::write(NodeId node,
                                              std::uint64_t offset,
                                              std::string_view data,
                                              const Credentials& creds) {
  auto r = YancFs::write(node, offset, data, creds);
  if (r && !applying_remote_) {
    if (auto path = path_of(node)) {
      Op op;
      op.kind = Op::Kind::write;
      op.path = *path;
      op.offset = offset;
      op.data = std::string(data);
      emit(std::move(op));
    }
  }
  return r;
}

Status ReplicatedYancFs::truncate(NodeId node, std::uint64_t size,
                                  const Credentials& creds) {
  auto ec = YancFs::truncate(node, size, creds);
  if (!ec && !applying_remote_) {
    if (auto path = path_of(node)) {
      Op op;
      op.kind = Op::Kind::truncate;
      op.path = *path;
      op.offset = size;
      emit(std::move(op));
    }
  }
  return ec;
}

Result<std::uint64_t> ReplicatedYancFs::replace(NodeId node,
                                                std::string_view data,
                                                const Credentials& creds) {
  // Locally atomic (MemFs swaps content under one shard lock); on the wire
  // it is the existing truncate+write pair — remote application is already
  // asynchronous, so the two-op window adds nothing new there.
  auto r = YancFs::replace(node, data, creds);
  if (r && !applying_remote_) {
    if (auto path = path_of(node)) {
      Op t;
      t.kind = Op::Kind::truncate;
      t.path = *path;
      t.offset = 0;
      emit(std::move(t));
      Op w;
      w.kind = Op::Kind::write;
      w.path = *path;
      w.offset = 0;
      w.data = std::string(data);
      emit(std::move(w));
    }
  }
  return r;
}

Status ReplicatedYancFs::unlink(NodeId parent, const std::string& name,
                                const Credentials& creds) {
  auto parent_path = path_of(parent);
  auto ec = YancFs::unlink(parent, name, creds);
  if (!ec && !applying_remote_ && parent_path) {
    Op op;
    op.kind = Op::Kind::unlink;
    op.path = (*parent_path == "/" ? "" : *parent_path) + "/" + name;
    emit(std::move(op));
  }
  return ec;
}

Status ReplicatedYancFs::rmdir(NodeId parent, const std::string& name,
                               const Credentials& creds) {
  auto parent_path = path_of(parent);
  auto ec = YancFs::rmdir(parent, name, creds);
  if (!ec && !applying_remote_ && parent_path) {
    Op op;
    op.kind = Op::Kind::rmdir;
    op.path = (*parent_path == "/" ? "" : *parent_path) + "/" + name;
    emit(std::move(op));
  }
  return ec;
}

Status ReplicatedYancFs::rename(NodeId old_parent, const std::string& old_name,
                                NodeId new_parent,
                                const std::string& new_name,
                                const Credentials& creds) {
  auto from_path = path_of(old_parent);
  auto to_path = path_of(new_parent);
  auto ec = YancFs::rename(old_parent, old_name, new_parent, new_name, creds);
  if (!ec && !applying_remote_ && from_path && to_path) {
    Op op;
    op.kind = Op::Kind::rename;
    op.path = (*from_path == "/" ? "" : *from_path) + "/" + old_name;
    op.aux = (*to_path == "/" ? "" : *to_path) + "/" + new_name;
    emit(std::move(op));
  }
  return ec;
}

Result<NodeId> ReplicatedYancFs::symlink(NodeId parent,
                                         const std::string& name,
                                         const std::string& target,
                                         const Credentials& creds) {
  auto parent_path = path_of(parent);
  auto r = YancFs::symlink(parent, name, target, creds);
  if (r && !applying_remote_ && parent_path) {
    Op op;
    op.kind = Op::Kind::symlink;
    op.path = (*parent_path == "/" ? "" : *parent_path) + "/" + name;
    op.aux = target;
    emit(std::move(op));
  }
  return r;
}

Status ReplicatedYancFs::chmod(NodeId node, std::uint32_t mode,
                               const Credentials& creds) {
  auto ec = YancFs::chmod(node, mode, creds);
  if (!ec && !applying_remote_) {
    if (auto path = path_of(node)) {
      Op op;
      op.kind = Op::Kind::chmod;
      op.path = *path;
      op.mode = mode;
      emit(std::move(op));
    }
  }
  return ec;
}

Status ReplicatedYancFs::chown(NodeId node, vfs::Uid uid, vfs::Gid gid,
                               const Credentials& creds) {
  auto ec = YancFs::chown(node, uid, gid, creds);
  if (!ec && !applying_remote_) {
    if (auto path = path_of(node)) {
      Op op;
      op.kind = Op::Kind::chown;
      op.path = *path;
      op.uid = uid;
      op.gid = gid;
      emit(std::move(op));
    }
  }
  return ec;
}

Status ReplicatedYancFs::setxattr(NodeId node, const std::string& name,
                                  std::vector<std::uint8_t> value,
                                  const Credentials& creds) {
  std::string copy(value.begin(), value.end());
  auto ec = YancFs::setxattr(node, name, std::move(value), creds);
  if (!ec && !applying_remote_) {
    if (auto path = path_of(node)) {
      Op op;
      op.kind = Op::Kind::setxattr;
      op.path = *path;
      op.aux = name;
      op.data = std::move(copy);
      emit(std::move(op));
    }
  }
  return ec;
}

Status ReplicatedYancFs::removexattr(NodeId node, const std::string& name,
                                     const Credentials& creds) {
  auto ec = YancFs::removexattr(node, name, creds);
  if (!ec && !applying_remote_) {
    if (auto path = path_of(node)) {
      Op op;
      op.kind = Op::Kind::removexattr;
      op.path = *path;
      op.aux = name;
      emit(std::move(op));
    }
  }
  return ec;
}

// --- Cluster -------------------------------------------------------------------

Cluster::Cluster(net::Scheduler& scheduler, ClusterOptions options)
    : transport_(scheduler, options.link_latency) {
  for (std::size_t i = 0; i < options.nodes; ++i) {
    auto replica = std::make_shared<ReplicatedYancFs>(
        ReplicaOptions{options.default_mode});
    replicas_.push_back(replica);
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    auto replica = replicas_[i];
    Transport::NodeId id = transport_.join(
        [replica](Transport::NodeId from,
                  const std::vector<std::uint8_t>& bytes) {
          replica->handle_message(from, bytes);
        });
    replica->attach(&transport_, id, /*primary=*/0);
  }
}

}  // namespace yanc::dist
