// ReplicatedYancFs: a yanc file system whose mutations replicate across a
// cluster — the paper's §6 claim made concrete: "you can layer any number
// of distributed file systems on top of the yanc file system and arrive at
// a distributed SDN controller."
//
// Replication happens *below* the Filesystem API, so applications,
// drivers, and shell tools on every node are completely unaware of it:
// a flow directory committed on node A materializes on node B, where B's
// driver pushes it into B's switches (exactly the paper's NFS proof of
// concept, and its vision of switches participating directly, §7.1).
//
// Two consistency models, selectable per subtree via the extended
// attribute `user.yanc.consistency` (§5.1: "we plan on utilizing
// [extended attributes] to specify consistency requirements"):
//   strict   — NFS-like primary ordering: mutations are routed through the
//              primary synchronously (the origin pays a round trip,
//              recorded in sync_delay_ns) and fan out from there.
//   eventual — WheelFS-like: apply locally at once, broadcast
//              asynchronously, last-writer-wins on conflicting content.
#pragma once

#include <optional>

#include "yanc/dist/transport.hpp"
#include "yanc/netfs/yancfs.hpp"

namespace yanc::dist {

enum class Mode : std::uint8_t { strict, eventual };

inline constexpr const char* kConsistencyXattr = "user.yanc.consistency";

struct ReplicaOptions {
  Mode default_mode = Mode::strict;
};

class ReplicatedYancFs : public netfs::YancFs {
 public:
  explicit ReplicatedYancFs(ReplicaOptions options = {});

  /// Wires the replica into a cluster.  `primary` orders strict-mode ops.
  void attach(Transport* transport, Transport::NodeId self,
              Transport::NodeId primary);

  /// Self-service cluster wiring: joins `transport` (registering this
  /// replica's op-log handler) and attaches, returning the node id the
  /// transport assigned.  The external equivalent of what dist::Cluster
  /// does for its own members — cluster::Harness uses it because
  /// handle_message is otherwise private.
  Transport::NodeId join_cluster(Transport& transport,
                                 Transport::NodeId primary = 0);
  /// Re-registers the op-log handler after Transport::leave(self) — node
  /// revival.  The transport bumps the incarnation, so anything in flight
  /// to the dead node stays dead.
  void rejoin_cluster();

  // Mutating operations (overridden to replicate after local success).
  Result<vfs::NodeId> mkdir(vfs::NodeId parent, const std::string& name,
                            std::uint32_t mode,
                            const vfs::Credentials& creds) override;
  Result<vfs::NodeId> create(vfs::NodeId parent, const std::string& name,
                             std::uint32_t mode,
                             const vfs::Credentials& creds) override;
  Result<std::uint64_t> write(vfs::NodeId node, std::uint64_t offset,
                              std::string_view data,
                              const vfs::Credentials& creds) override;
  Status truncate(vfs::NodeId node, std::uint64_t size,
                  const vfs::Credentials& creds) override;
  Result<std::uint64_t> replace(vfs::NodeId node, std::string_view data,
                                const vfs::Credentials& creds) override;
  Status unlink(vfs::NodeId parent, const std::string& name,
                const vfs::Credentials& creds) override;
  Status rmdir(vfs::NodeId parent, const std::string& name,
               const vfs::Credentials& creds) override;
  Status rename(vfs::NodeId old_parent, const std::string& old_name,
                vfs::NodeId new_parent, const std::string& new_name,
                const vfs::Credentials& creds) override;
  Result<vfs::NodeId> symlink(vfs::NodeId parent, const std::string& name,
                              const std::string& target,
                              const vfs::Credentials& creds) override;
  Status chmod(vfs::NodeId node, std::uint32_t mode,
               const vfs::Credentials& creds) override;
  Status chown(vfs::NodeId node, vfs::Uid uid, vfs::Gid gid,
               const vfs::Credentials& creds) override;
  Status setxattr(vfs::NodeId node, const std::string& name,
                  std::vector<std::uint8_t> value,
                  const vfs::Credentials& creds) override;
  Status removexattr(vfs::NodeId node, const std::string& name,
                     const vfs::Credentials& creds) override;

  /// Registers dist/replication_{apply,conflict}_total and
  /// dist/replication_lag_ns in `registry` (typically the registry of the
  /// Vfs this replica is mounted into).  Lag is virtual time from the
  /// origin's emit to this node's apply.  Also registers
  /// dist/anti_entropy_{round,repair}_total.
  void bind_metrics(obs::Registry& registry);

  /// Anti-entropy (§6 made honest about lossy links): broadcasts a
  /// summary of this replica's whole tree — every path with its
  /// last-writer version and content, plus deletion tombstones.
  /// Receivers repair divergence: recreate what they missed, adopt newer
  /// content, and honour deletions they never saw.  Op-log replication
  /// keeps replicas converged when every message arrives; this pass
  /// restores convergence when some did not.  One full round =
  /// Cluster::anti_entropy_round() (every node broadcasts once).
  void send_anti_entropy();

  // --- statistics --------------------------------------------------------
  std::uint64_t local_ops() const noexcept { return local_ops_; }
  std::uint64_t remote_ops_applied() const noexcept { return remote_ops_; }
  std::uint64_t conflicts_ignored() const noexcept { return conflicts_; }
  /// Total synchronous delay charged by strict-mode primary round trips.
  std::uint64_t sync_delay_ns() const noexcept { return sync_delay_ns_; }
  /// Nodes/files this replica fixed up during anti-entropy merges.
  std::uint64_t repairs_applied() const noexcept { return repairs_; }

 private:
  friend class Cluster;

  struct Op;
  struct Snapshot;
  void handle_message(Transport::NodeId from,
                      const std::vector<std::uint8_t>& bytes);
  /// Applies a (possibly remote) op; returns false on conflict.
  bool apply(const Op& op);
  /// Replicates an op after local success.
  void emit(Op op);
  Mode mode_for(vfs::NodeId node) const;
  Result<vfs::NodeId> resolve_local(const std::string& path);

  using Version = std::pair<std::uint64_t, std::uint64_t>;  // (ts, origin)
  Version version_of(const std::string& path) const;
  Version newest_in_subtree(const std::string& path) const;
  /// True when `path` (or an ancestor) has a tombstone at least as new
  /// as `version`.
  bool tombstoned(const std::string& path, Version version) const;
  void record_tombstone(const std::string& path, Version version);
  /// Folds one (local or remote) op into write_versions_/tombstones_.
  void note_version(const Op& op);
  void snapshot_subtree(vfs::NodeId node, const std::string& path,
                        Snapshot& snap);
  void apply_anti_entropy(const Snapshot& snap);
  void remove_subtree_local(const std::string& path);
  void merge_entry_local(std::uint8_t type, const std::string& path,
                         Version version, const std::string& data);

  ReplicaOptions options_;
  Transport* transport_ = nullptr;
  Transport::NodeId self_ = 0;
  Transport::NodeId primary_ = 0;
  bool applying_remote_ = false;
  std::uint64_t lamport_ = 0;
  // Last-writer-wins bookkeeping: path -> (ts, origin) of the newest
  // content write or node creation seen for that path.
  std::map<std::string, Version> write_versions_;
  // Deletions survive as tombstones so anti-entropy never resurrects a
  // path a newer unlink/rmdir removed.  A tombstone covers its subtree.
  std::map<std::string, Version> tombstones_;
  std::uint64_t local_ops_ = 0;
  std::uint64_t remote_ops_ = 0;
  std::uint64_t conflicts_ = 0;
  std::uint64_t sync_delay_ns_ = 0;
  std::uint64_t repairs_ = 0;
  obs::Counter* apply_metric_ = nullptr;
  obs::Counter* conflict_metric_ = nullptr;
  obs::Counter* ae_round_metric_ = nullptr;
  obs::Counter* ae_repair_metric_ = nullptr;
  obs::Histogram* lag_metric_ = nullptr;
};

struct ClusterOptions {
  std::size_t nodes = 2;
  VirtualClock::duration link_latency = std::chrono::microseconds(500);
  Mode default_mode = Mode::strict;
};

/// A cluster of replicated yanc file systems over one simulated transport.
/// Node 0 is the primary for strict-mode subtrees.
class Cluster {
 public:
  Cluster(net::Scheduler& scheduler, ClusterOptions options);

  std::size_t size() const noexcept { return replicas_.size(); }
  std::shared_ptr<ReplicatedYancFs> fs(std::size_t node) {
    return replicas_.at(node);
  }
  Transport& transport() noexcept { return transport_; }

  void partition(std::size_t a, std::size_t b) {
    transport_.set_partitioned(a, b, true);
  }
  void heal(std::size_t a, std::size_t b) {
    transport_.set_partitioned(a, b, false);
  }

  /// One anti-entropy round: every replica broadcasts its tree summary.
  /// Run the scheduler afterwards, then repeat once more if repairs on
  /// one node must propagate knowledge back to the others.
  void anti_entropy_round() {
    for (auto& replica : replicas_) replica->send_anti_entropy();
  }

 private:
  Transport transport_;
  std::vector<std::shared_ptr<ReplicatedYancFs>> replicas_;
};

}  // namespace yanc::dist
