#include "yanc/dbg/lockdep.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if YANC_DBG_LOCKS
#include <unistd.h>  // getpid: the edge export writes one file per process
#endif

namespace yanc::dbg {

const char* rank_name(Rank r) noexcept {
  switch (r) {
    case Rank::vfs_mounts: return "vfs_mounts";
    case Rank::vfs_dcache: return "vfs_dcache";
    case Rank::vfs_namespace: return "vfs_namespace";
    case Rank::vfs_data_shard: return "vfs_data_shard";
    case Rank::vfs_emit: return "vfs_emit";
    case Rank::watch_registry: return "watch_registry";
    case Rank::watch_queue: return "watch_queue";
    case Rank::stats_fs: return "stats_fs";
    case Rank::faults_fs: return "faults_fs";
    case Rank::faults_injector: return "faults_injector";
    case Rank::obs_metrics: return "obs_metrics";
    case Rank::obs_trace: return "obs_trace";
    case Rank::obs_tracer: return "obs_tracer";
    case Rank::net_listener: return "net_listener";
    case Rank::net_channel: return "net_channel";
    case Rank::packet_pool: return "packet_pool";
    case Rank::dist_transport: return "dist_transport";
    case Rank::driver: return "driver";
    case Rank::trace_fs: return "trace_fs";
    case Rank::cluster_manager: return "cluster_manager";
  }
  return "unknown_rank";
}

#if YANC_DBG_LOCKS

namespace detail {
namespace {

constexpr int kN = static_cast<int>(kRankCount);
constexpr int kMaxHeld = 32;

struct HeldEntry {
  Rank rank;
  std::source_location loc;
};
thread_local HeldEntry t_held[kMaxHeld];
thread_local int t_depth = 0;

// Acquired-while-held edges: g_edge[a][b] set once the process has seen
// rank b acquired while rank a was held.  The matrix only ever gains
// edges, so the lock-free fast path (skip everything for a known edge)
// is safe; publication and the cycle check serialize on g_mu.
std::atomic<bool> g_edge[kN][kN];
std::mutex g_mu;  // yanc-lint: allow(raw-mutex) lockdep's own graph lock
                  // cannot be a ranked lock without infinite regress

struct EdgeSite {
  // Where the edge was first created: the site holding `a` and the site
  // acquiring `b`.  Written once under g_mu.
  const char* holder_file = "?";
  unsigned holder_line = 0;
  const char* acquire_file = "?";
  unsigned acquire_line = 0;
};
EdgeSite g_site[kN][kN];

/// DFS: is `to` reachable from `from` over recorded edges?  Fills `path`
/// with the rank chain (inclusive of both ends) when found.  Runs under
/// g_mu; the graph has kRankCount nodes, so recursion depth is trivial.
bool find_path(int from, int to, bool (&visited)[kN], int (&path)[kN + 1],
               int& path_len) {
  path[path_len++] = from;
  if (from == to) return true;
  visited[from] = true;
  for (int next = 0; next < kN; ++next) {
    if (visited[next] || !g_edge[from][next].load(std::memory_order_relaxed))
      continue;
    if (find_path(next, to, visited, path, path_len)) return true;
  }
  --path_len;
  return false;
}

[[noreturn]] void die_cycle(Rank held, const std::source_location& held_loc,
                            Rank acq, const std::source_location& acq_loc,
                            const int* path, int path_len) {
  std::fprintf(stderr,
               "yanc::dbg lock-order violation (would deadlock):\n"
               "  acquiring %-14s at %s:%u\n"
               "  while holding %-10s acquired at %s:%u\n"
               "  but the opposite order is already established:\n",
               rank_name(acq), acq_loc.file_name(),
               static_cast<unsigned>(acq_loc.line()), rank_name(held),
               held_loc.file_name(), static_cast<unsigned>(held_loc.line()));
  for (int i = 0; i + 1 < path_len; ++i) {
    const EdgeSite& site = g_site[path[i]][path[i + 1]];
    std::fprintf(stderr,
                 "    %s -> %s  (held at %s:%u, acquired at %s:%u)\n",
                 rank_name(static_cast<Rank>(path[i])),
                 rank_name(static_cast<Rank>(path[i + 1])), site.holder_file,
                 site.holder_line, site.acquire_file, site.acquire_line);
  }
  std::fprintf(stderr, "  see docs/CORRECTNESS.md for the rank table\n");
  std::abort();
}

[[noreturn]] void die_same_rank(Rank r, const std::source_location& first,
                                const std::source_location& second) {
  std::fprintf(stderr,
               "yanc::dbg same-rank nesting (no code path may hold two "
               "%s locks):\n"
               "  first  acquired at %s:%u\n"
               "  second acquired at %s:%u\n"
               "  see docs/CORRECTNESS.md for the rank table\n",
               rank_name(r), first.file_name(),
               static_cast<unsigned>(first.line()), second.file_name(),
               static_cast<unsigned>(second.line()));
  std::abort();
}

}  // namespace

void on_acquire(Rank r, std::source_location loc) {
  const int ri = static_cast<int>(r);
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].rank == r) die_same_rank(r, t_held[i].loc, loc);
  }
  for (int i = 0; i < t_depth; ++i) {
    const int hi = static_cast<int>(t_held[i].rank);
    if (g_edge[hi][ri].load(std::memory_order_relaxed)) continue;
    std::lock_guard graph_lock(g_mu);  // yanc-lint: allow(raw-mutex) ditto
    if (g_edge[hi][ri].load(std::memory_order_relaxed)) continue;
    // Before publishing held->acquiring, make sure the reverse direction
    // is not already reachable — that closure is the deadlock.
    bool visited[kN] = {};
    int path[kN + 1];
    int path_len = 0;
    if (find_path(ri, hi, visited, path, path_len))
      die_cycle(t_held[i].rank, t_held[i].loc, r, loc, path, path_len);
    g_site[hi][ri] = EdgeSite{t_held[i].loc.file_name(),
                              static_cast<unsigned>(t_held[i].loc.line()),
                              loc.file_name(),
                              static_cast<unsigned>(loc.line())};
    g_edge[hi][ri].store(true, std::memory_order_relaxed);
  }
  if (t_depth == kMaxHeld) {
    std::fprintf(stderr,
                 "yanc::dbg: lock nesting depth exceeded %d acquiring %s "
                 "at %s:%u (runaway recursion under locks?)\n",
                 kMaxHeld, rank_name(r), loc.file_name(),
                 static_cast<unsigned>(loc.line()));
    std::abort();
  }
  t_held[t_depth++] = HeldEntry{r, loc};
}

void on_release(Rank r) noexcept {
  // Search from the top: releases are usually LIFO, but MutationScope
  // legitimately drops the namespace lock while the emit lock stays held.
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i].rank != r) continue;
    for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
    --t_depth;
    return;
  }
  // Releasing a rank that is not held: only reachable through API misuse
  // (e.g. unlocking an unowned UniqueLock); make it loud in checked builds.
  std::fprintf(stderr, "yanc::dbg: release of %s which is not held\n",
               rank_name(r));
  std::abort();
}

int held_depth() noexcept { return t_depth; }

}  // namespace detail

std::vector<LockEdge> lock_edges() {
  std::vector<LockEdge> out;
  // yanc-lint: allow(raw-mutex) lockdep's own graph lock, as above
  std::lock_guard graph_lock(detail::g_mu);
  for (int a = 0; a < detail::kN; ++a) {
    for (int b = 0; b < detail::kN; ++b) {
      if (!detail::g_edge[a][b].load(std::memory_order_relaxed)) continue;
      const auto& site = detail::g_site[a][b];
      out.push_back(LockEdge{static_cast<Rank>(a), static_cast<Rank>(b),
                             site.holder_file, site.holder_line,
                             site.acquire_file, site.acquire_line});
    }
  }
  return out;
}

std::string dump_lock_edges() {
  std::string out;
  char line[512];
  for (const LockEdge& e : lock_edges()) {
    std::snprintf(line, sizeof line, "%s %s %s:%u %s:%u\n",
                  rank_name(e.held), rank_name(e.acquired), e.holder_file,
                  e.holder_line, e.acquire_file, e.acquire_line);
    out += line;
  }
  return out;
}

namespace {

void export_edges_at_exit() {
  const char* base = std::getenv("YANC_LOCK_EDGES_OUT");
  if (!base || !*base) return;
  char path[512];
  std::snprintf(path, sizeof path, "%s.%ld", base,
                static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::string text = dump_lock_edges();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

// Self-registering: any process linked against yanc exports its observed
// edge graph at exit when YANC_LOCK_EDGES_OUT is set — no test changes
// needed for the coverage sweep.
[[maybe_unused]] const bool g_export_registered = [] {
  if (std::getenv("YANC_LOCK_EDGES_OUT")) std::atexit(&export_edges_at_exit);
  return true;
}();

}  // namespace

#else  // !YANC_DBG_LOCKS — no graph is recorded; the API stays callable.

std::vector<LockEdge> lock_edges() { return {}; }
std::string dump_lock_edges() { return {}; }

#endif  // YANC_DBG_LOCKS

}  // namespace yanc::dbg
