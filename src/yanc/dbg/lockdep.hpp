// yanc::dbg — lockdep-lite: ranked mutex wrappers with runtime lock-order
// validation (kernel practice the paper's §3 reuse argument points at).
//
// Every lock in the codebase belongs to a named class (dbg::Rank).  In
// checked builds (YANC_DBG_LOCKS=1, the default) each acquisition records
// "rank A was held while rank B was acquired" in a process-wide edge
// graph; an acquisition that would close a cycle — i.e. two code paths
// that take the same two lock classes in opposite orders, a deadlock
// waiting for the right schedule — aborts immediately with both lock
// names and both acquisition sites.  Unlike TSan, this catches the
// inversion on ANY schedule that exercises the two paths, not just the
// schedule that actually interleaves them.
//
// Rules enforced:
//   * no cycles in the acquired-while-held graph (the deadlock check);
//   * no same-rank nesting: a thread never holds two locks of one rank
//     (no code path in the tree needs it, and allowing it would hide
//     A-B/B-A inversions between instances of that rank);
//   * bounded nesting depth (kMaxHeld), a sanity backstop.
//
// In release builds (YANC_DBG_LOCKS=0) the wrappers are alias templates
// for the raw standard types and the guards are the standard guards:
// zero overhead, byte-for-byte identical to pre-lockdep code.
//
// docs/CORRECTNESS.md has the full rank table: what each rank protects
// and what it may be held under.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <source_location>
#include <string>
#include <vector>

#ifndef YANC_DBG_LOCKS
#define YANC_DBG_LOCKS 1
#endif

namespace yanc::dbg {

/// Every lock class in the tree, one enumerator per class.  Multiple
/// instances of a class (64 vfs data shards, one WatchQueue per consumer)
/// share a rank: the same-rank rule then also proves no code path ever
/// holds two instances at once, which is what makes per-instance order
/// irrelevant.  dist_transport and driver are reserved: those layers are
/// currently single-threaded by design (simnet scheduler), and any lock
/// they grow must take its place in this table.
enum class Rank : std::uint8_t {
  vfs_mounts = 0,   // Vfs mount table
  vfs_dcache,       // Vfs resolution (dentry) cache
  vfs_namespace,    // MemFs namespace (mu_)
  vfs_data_shard,   // MemFs per-inode content shards
  vfs_emit,         // MemFs watch fan-out order lock (emit_mu_)
  watch_registry,   // WatchRegistry subscription map
  watch_queue,      // WatchQueue consumer queues
  stats_fs,         // obs::StatsFs tree
  faults_fs,        // faults::FaultsFs nodes
  faults_injector,  // faults::Injector plans + rng
  obs_metrics,      // obs::Registry name map
  obs_trace,        // obs::TraceRing ring
  obs_tracer,       // obs::Tracer correlation maps + stage-handle cache
  net_listener,     // net::Listener accept backlog
  net_channel,      // net::Channel shared queue pair
  packet_pool,      // fast::PacketPool free list
  // yanc-analyze: allow(rank-unused) reserved: dist runs on the simnet scheduler thread
  dist_transport,   // reserved (dist layer is scheduler-single-threaded)
  // yanc-analyze: allow(rank-unused) reserved: drivers run on the caller's thread
  driver,           // reserved (drivers run on the caller's thread)
  trace_fs,         // obs::TraceFs by-id node map
  cluster_manager,  // cluster::Manager lease/election state
};

inline constexpr std::size_t kRankCount = 20;

/// Stable lower_snake name for diagnostics ("vfs_namespace").
const char* rank_name(Rank r) noexcept;

/// One observed acquired-while-held edge, with the sites that first
/// created it (file/line of the holder and of the acquisition).
struct LockEdge {
  Rank held;
  Rank acquired;
  const char* holder_file;
  unsigned holder_line;
  const char* acquire_file;
  unsigned acquire_line;
};

/// Snapshot of the process-wide runtime edge graph, ordered by rank pair.
/// Empty in release builds (YANC_DBG_LOCKS=0): no graph is recorded.
std::vector<LockEdge> lock_edges();

/// Text form, one edge per line:
///   <held> <acquired> <holder_file>:<line> <acquire_file>:<line>
/// Consumed by `yanc-analyze --runtime-edges` for the static-vs-runtime
/// lock-coverage report, and exposed at /yanc/.stats/dbg/lock_edges.
/// Additionally, when the environment variable YANC_LOCK_EDGES_OUT is set
/// at startup, every process writes this dump to "<value>.<pid>" at exit
/// (one file per process: a ctest run spans many binaries).
std::string dump_lock_edges();

#if YANC_DBG_LOCKS

namespace detail {
/// Validates acquiring `r` against the caller's held set and the global
/// edge graph; aborts with a full report on violation, records the edge
/// and pushes onto the per-thread held stack otherwise.  Called BEFORE
/// blocking on the underlying mutex, so a real deadlock is diagnosed
/// instead of hung.
void on_acquire(Rank r, std::source_location loc);
/// Pops `r` from the per-thread held stack (out-of-order release is
/// fine: MutationScope releases the namespace lock before the emit lock).
void on_release(Rank r) noexcept;
/// Current nesting depth of the calling thread (tests).
int held_depth() noexcept;
}  // namespace detail

/// std::mutex with a rank.  Satisfies Lockable, so the standard guards
/// work too — but prefer the dbg guards below: their source_location
/// default argument captures the *call site*, which is what the
/// violation report prints.
template <Rank R>
class Mutex {
 public:
  void lock(std::source_location loc = std::source_location::current()) {
    detail::on_acquire(R, loc);
    m_.lock();
  }
  bool try_lock(std::source_location loc = std::source_location::current()) {
    // A try_lock cannot deadlock by itself, but an inverted try-order is
    // still a latent bug on the path that later uses lock(); validate the
    // same way.  Validation precedes the attempt, so failure paths are
    // indistinguishable from success in the graph.
    detail::on_acquire(R, loc);
    if (m_.try_lock()) return true;
    detail::on_release(R);
    return false;
  }
  void unlock() {
    // Validate before touching the raw mutex: releasing a lock this
    // thread does not hold must die with our diagnostic, not as raw UB
    // (or a TSan interceptor abort) inside std::mutex.
    detail::on_release(R);
    m_.unlock();
  }
  static constexpr Rank rank() noexcept { return R; }

 private:
  std::mutex m_;
};

/// std::shared_mutex with a rank.  Shared and exclusive acquisitions feed
/// the same edge graph: reader-vs-writer inversions deadlock just as hard.
template <Rank R>
class SharedMutex {
 public:
  void lock(std::source_location loc = std::source_location::current()) {
    detail::on_acquire(R, loc);
    m_.lock();
  }
  void unlock() {
    detail::on_release(R);  // validate-then-release, as in Mutex::unlock
    m_.unlock();
  }
  void lock_shared(std::source_location loc =
                       std::source_location::current()) {
    detail::on_acquire(R, loc);
    m_.lock_shared();
  }
  void unlock_shared() {
    detail::on_release(R);  // validate-then-release, as in Mutex::unlock
    m_.unlock_shared();
  }
  static constexpr Rank rank() noexcept { return R; }

 private:
  std::shared_mutex m_;
};

/// lock_guard analogue; captures the construction site.
template <class M>
class LockGuard {
 public:
  explicit LockGuard(M& m,
                     std::source_location loc = std::source_location::current())
      : m_(m) {
    m_.lock(loc);
  }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  M& m_;
};

/// unique_lock analogue: relockable, usable with dbg::CondVar.  Re-locks
/// report the original construction site (the wait loop's caller is the
/// interesting frame, not the wait internals).
template <class M>
class UniqueLock {
 public:
  explicit UniqueLock(M& m,
                      std::source_location loc = std::source_location::current())
      : m_(&m), loc_(loc) {
    m_->lock(loc_);
    owns_ = true;
  }
  ~UniqueLock() {
    if (owns_) m_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() {
    m_->lock(loc_);
    owns_ = true;
  }
  void unlock() {
    m_->unlock();
    owns_ = false;
  }
  bool owns_lock() const noexcept { return owns_; }

 private:
  M* m_;
  std::source_location loc_;
  bool owns_ = false;
};

/// shared_lock analogue (shared side of SharedMutex).
template <class M>
class SharedLock {
 public:
  explicit SharedLock(M& m,
                      std::source_location loc = std::source_location::current())
      : m_(m) {
    m_.lock_shared(loc);
  }
  ~SharedLock() { m_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  M& m_;
};

/// dbg::UniqueLock is not std::unique_lock, so waits go through the
/// any-lockable condition variable.
using CondVar = std::condition_variable_any;

#else  // !YANC_DBG_LOCKS — wrappers vanish into the raw standard types.

template <Rank>
using Mutex = std::mutex;
template <Rank>
using SharedMutex = std::shared_mutex;
template <class M>
using LockGuard = std::lock_guard<M>;
template <class M>
using UniqueLock = std::unique_lock<M>;
template <class M>
using SharedLock = std::shared_lock<M>;
using CondVar = std::condition_variable;

// The release-build contract the benchmarks rely on: a ranked mutex IS a
// raw mutex, not a wrapper around one.
static_assert(std::is_same_v<Mutex<Rank::vfs_namespace>, std::mutex>);
static_assert(
    std::is_same_v<SharedMutex<Rank::vfs_namespace>, std::shared_mutex>);
static_assert(sizeof(Mutex<Rank::vfs_emit>) == sizeof(std::mutex));

#endif  // YANC_DBG_LOCKS

}  // namespace yanc::dbg
