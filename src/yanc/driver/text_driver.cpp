#include "yanc/driver/text_driver.hpp"

#include <tuple>

#include "yanc/util/strings.hpp"

namespace yanc::driver {

using vfs::Credentials;

struct TextDriver::Connection {
  net::Channel channel;
  bool ready = false;
  std::string name;
  std::string path;
  // flow name -> version last sent to the device
  std::map<std::string, std::uint64_t> pushed;

  void send_line(const std::string& line) {
    // Failure means the switch end closed; the driver notices via
    // try_recv() on its next poll and reconcile re-pushes state then.
    std::ignore = channel.send(net::Message(line.begin(), line.end()));
  }
};

TextDriver::TextDriver(std::shared_ptr<vfs::Vfs> vfs,
                       TextDriverOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {}

TextDriver::~TextDriver() = default;

std::size_t TextDriver::connected_devices() const {
  std::size_t n = 0;
  for (const auto& conn : connections_)
    if (conn->ready && conn->channel.connected()) ++n;
  return n;
}

std::size_t TextDriver::poll() {
  std::size_t work = 0;
  while (auto channel = listener_.accept()) {
    auto conn = std::make_unique<Connection>();
    conn->channel = std::move(*channel);
    connections_.push_back(std::move(conn));
    ++work;
  }
  for (auto& conn : connections_) {
    while (auto msg = conn->channel.try_recv()) {
      handle_line(*conn, std::string(msg->begin(), msg->end()));
      ++work;
    }
    // A dumb poll-based sync keeps this driver tiny: no watches, just
    // diff the committed versions each quantum.  (The OpenFlow drivers
    // show the watch-based way; both are legal consumers of the FS.)
    if (conn->ready) work += sync_flows(*conn);
  }
  return work;
}

void TextDriver::handle_line(Connection& conn, const std::string& line) {
  auto tokens = split_nonempty(line, ' ');
  if (tokens.empty()) return;
  if (tokens[0] == "HELLO") {
    on_hello(conn, line);
    return;
  }
  if (tokens[0] == "PACKETIN" && conn.ready && tokens.size() >= 3) {
    std::uint16_t port = 0;
    std::string data;
    for (const auto& t : tokens) {
      if (starts_with(t, "port="))
        port = static_cast<std::uint16_t>(
            parse_u64(t.substr(5)).value_or(0));
      else if (starts_with(t, "data="))
        data = t.substr(5);
    }
    deliver_packet_in(conn, port, data);
    return;
  }
  if (tokens[0] == "BYE") {
    if (!conn.path.empty())
      (void)vfs_->write_file(conn.path + "/connected", "0");
    conn.channel.close();
  }
}

void TextDriver::on_hello(Connection& conn, const std::string& line) {
  std::uint64_t id = 0;
  std::vector<std::uint16_t> ports;
  for (const auto& token : split_nonempty(line, ' ')) {
    if (starts_with(token, "id="))
      id = parse_hex_u64(token.substr(3)).value_or(0);
    else if (starts_with(token, "ports="))
      for (const auto& p : split_nonempty(token.substr(6), ','))
        ports.push_back(
            static_cast<std::uint16_t>(parse_u64(p).value_or(0)));
  }
  conn.name = options_.switch_name_prefix + std::to_string(next_index_++);
  conn.path = options_.net_root + "/switches/" + conn.name;
  if (auto ec = vfs_->mkdir(conn.path);
      ec && ec != make_error_code(Errc::exists)) {
    conn.channel.close();
    return;
  }
  (void)vfs_->write_file(conn.path + "/id", "0x" + to_hex(id, 8));
  (void)vfs_->write_file(conn.path + "/protocol_version", "text/1");
  (void)vfs_->write_file(conn.path + "/connected", "1");
  for (std::uint16_t p : ports) {
    std::string port_dir = conn.path + "/ports/" + std::to_string(p);
    (void)vfs_->mkdir(port_dir);
    (void)vfs_->write_file(port_dir + "/port_no", std::to_string(p));
  }
  conn.ready = true;
}

std::size_t TextDriver::sync_flows(Connection& conn) {
  std::size_t work = 0;
  auto flows = vfs_->readdir(conn.path + "/flows");
  if (!flows) return 0;
  std::map<std::string, bool> present;
  for (const auto& entry : *flows) {
    present[entry.name] = true;
    auto spec =
        netfs::read_flow(*vfs_, conn.path + "/flows/" + entry.name);
    if (!spec || spec->version == 0) continue;
    auto& pushed = conn.pushed[entry.name];
    if (spec->version <= pushed) continue;
    conn.send_line("FLOW " + entry.name + " " + spec->to_string());
    pushed = spec->version;
    ++work;
  }
  for (auto it = conn.pushed.begin(); it != conn.pushed.end();) {
    if (present.count(it->first)) {
      ++it;
      continue;
    }
    conn.send_line("UNFLOW " + it->first);
    it = conn.pushed.erase(it);
    ++work;
  }
  return work;
}

void TextDriver::deliver_packet_in(Connection& conn, std::uint16_t port,
                                   const std::string& hex_data) {
  // Hex decode the frame.
  std::string data;
  for (std::size_t i = 0; i + 1 < hex_data.size(); i += 2) {
    auto byte = parse_hex_u64(hex_data.substr(i, 2));
    if (!byte) return;
    data.push_back(static_cast<char>(*byte));
  }
  std::string events_dir = options_.net_root + "/events";
  auto apps = vfs_->readdir(events_dir);
  if (!apps) return;
  char seq[24];
  std::snprintf(seq, sizeof seq, "xpkt_%09llu",
                static_cast<unsigned long long>(next_pkt_++));
  for (const auto& app : *apps) {
    if (app.type != vfs::FileType::directory) continue;
    std::string dir = events_dir + "/" + app.name + "/" + seq;
    if (vfs_->mkdir(dir)) continue;
    (void)vfs_->write_file(dir + "/datapath", conn.name);
    (void)vfs_->write_file(dir + "/in_port", std::to_string(port));
    (void)vfs_->write_file(dir + "/reason", "no_match");
    (void)vfs_->write_file(dir + "/data", data);
  }
}

}  // namespace yanc::driver
