#include "yanc/driver/of_driver.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "yanc/obs/tracer.hpp"
#include "yanc/util/log.hpp"
#include "yanc/util/strings.hpp"

namespace yanc::driver {

using flow::FlowSpec;
using vfs::Credentials;
using vfs::NodeId;

// An in-flight tracked request (flow-commit barrier, the features
// handshake), keyed by xid in its connection's `pending` map.  `flows`
// lists every commit the request covers — a batched train's barrier
// vouches for all of them, so a timeout re-pushes all of them.  Empty
// means the handshake.
struct OfDriver::PendingRequest {
  std::vector<std::string> flows;
  std::uint64_t deadline = 0;  // tick at which to retry
  std::uint32_t retries = 0;
  // Tracing state of the covered train (empty when untraced): each
  // trace gets a commit_ack span when the barrier reply lands, or a
  // fault annotation when the train dies; leftover wire handoffs under
  // these xids are reclaimed either way so nothing leaks.
  std::vector<obs::TraceRef> traces;
  std::vector<std::uint32_t> xids;
  std::uint64_t sent_ns = 0;  // when the train left (ack queue = RTT)
};

struct OfDriver::Connection {
  net::Channel channel;
  enum class State { handshaking, ready } state = State::handshaking;
  std::uint64_t dpid = 0;
  std::string name;  // directory name under switches/
  std::string path;  // absolute switch directory path
  std::uint32_t next_xid = 1;

  // Per-switch watch shard: this connection's slice of the file system's
  // event stream.  Sharding keeps one slow or overflowing switch from
  // forcing a rescan of every other switch, and gives the batched drain
  // a natural unit — one burst, one switch, one wire train.
  vfs::WatchQueuePtr fs_queue;

  // Egress burst (batching mode): FLOW_MODs queued since the last flush.
  // Sealed buffers each pack up to max_batch messages; the whole burst
  // leaves in one vectored send_batch capped by a single barrier.
  struct Egress {
    std::vector<net::Message> bufs;        // sealed packed buffers
    std::optional<ofp::BatchEncoder> enc;  // buffer being filled
    std::vector<std::string> flows;        // commits riding this train
    std::size_t mods = 0;                  // FLOW_MODs in the burst
    std::uint64_t counter_delta = 0;       // deferred counters/flow_mods
    std::uint32_t retries = 0;             // max over contributing pushes
    std::uint64_t first_tick = 0;          // when the burst opened
    // Causal contexts riding the train, and the FLOW_MOD xids they were
    // wire_put under (parallel staging, consumed independently: traces
    // feed the barrier's commit_ack spans, xids feed handoff cleanup
    // when the train dies).  Both empty when tracing is off, so the
    // fast path never touches them.
    std::vector<obs::TraceRef> traces;
    std::vector<std::uint32_t> xids;
  } egress;

  // --- liveness / recovery state (ticks = driver poll counter) ---------
  std::uint64_t last_recv_tick = 0;  // last message from the switch
  std::uint64_t last_ping_tick = 0;  // last keepalive we sent
  std::uint64_t last_audit_tick = 0;
  bool down_marked = false;  // status=down already written
  // A newer connection presented the same dpid and owns the switch
  // directory now; this zombie must not touch the FS on its way out.
  bool superseded = false;

  // In-flight tracked requests, keyed by xid.
  std::map<std::uint32_t, PendingRequest> pending;
  std::uint32_t audit_xid = 0;  // outstanding audit flow-stats request

  struct FlowState {
    std::uint64_t pushed_version = 0;
    FlowSpec pushed;  // last spec sent to hardware
    std::shared_ptr<vfs::WatchHandle> version_watch;
    NodeId version_node = vfs::kInvalidNode;
  };
  std::map<std::string, FlowState> flows;
  // Deletions the driver itself performed (flow_removed mirroring); the
  // resulting FS delete event must not bounce a FLOW_MOD back.
  std::set<std::string> suppress_delete;

  // Keeps non-flow watches alive: flows/, packet_out/, per-port config,
  // per-packet-out send files.  Keyed by watched path.
  std::map<std::string, std::shared_ptr<vfs::WatchHandle>> watches;
  std::map<std::string, NodeId> watch_nodes;
  // Last configuration reported by the hardware, per port: (port_down,
  // no_flood).  PORT_MOD is only sent when the FS diverges from this, so
  // the driver's own PortStatus mirroring can never echo into a loop.
  std::map<std::uint16_t, std::pair<bool, bool>> port_hw_config;
};

struct OfDriver::WatchContext {
  enum class Kind {
    flows_dir,
    flow_version,
    port_config,
    pktout_dir,
    pktout_send,
  };
  Kind kind;
  Connection* conn = nullptr;
  std::string name;  // flow / port / packet-out directory name
};

namespace {

/// Closes out a dead train's causal state: reclaims any wire handoff the
/// switch never consumed and stamps `what` ("retry 2", "connection lost")
/// onto each carried trace, so a reconstructed chain ends at the fault
/// instead of dangling open.  Both vectors are empty when tracing was off
/// at staging time, making this free on the fault paths too.
void release_train(std::uint64_t dpid, const std::vector<std::uint32_t>& xids,
                   const std::vector<obs::TraceRef>& traces,
                   const std::string& what) {
  auto& tracer = obs::tracer();
  for (std::uint32_t xid : xids) (void)tracer.wire_take(dpid, xid);
  for (const auto& ref : traces)
    tracer.annotate(ref, "driver", "train_fault", what);
}

/// RAII commit-stage trace: opens a "driver/commit" span parented to the
/// first carried ref and installs it as the thread's context, so the
/// FLOW_MOD egress this push produces inherits the trace.  Every
/// *additional* ref — absorbed by watch-queue coalescing or by the
/// batched drain's per-flow dedup — gets a zero-width child span closing
/// its chain at this stage: one wire train, every contributing trace
/// accounted for.  Inert when `refs` is empty.
class CommitTrace {
 public:
  CommitTrace(const std::vector<obs::TraceRef>& refs, std::uint64_t ts_ns)
      : span_(refs.empty() ? obs::TraceRef{} : refs.front(), "driver",
              "commit", queue_ns(ts_ns)),
        scope_(span_.ref()) {
    if (refs.size() <= 1) return;
    std::uint64_t now = obs::Tracer::now_ns();
    for (std::size_t i = 1; i < refs.size(); ++i)
      (void)obs::tracer().child(refs[i], "driver", "commit", now, now,
                                queue_ns(ts_ns), "coalesced");
  }

 private:
  static std::uint64_t queue_ns(std::uint64_t ts_ns) {
    if (ts_ns == 0) return 0;
    std::uint64_t now = obs::Tracer::now_ns();
    return now > ts_ns ? now - ts_ns : 0;
  }

  obs::Span span_;
  obs::TraceScope scope_;
};

}  // namespace

OfDriver::OfDriver(std::shared_ptr<vfs::Vfs> vfs, DriverOptions options)
    : vfs_(std::move(vfs)), options_(std::move(options)) {
  auto& reg = *vfs_->metrics();
  metrics_.msg_in_total = reg.counter("driver/of/msg_in_total");
  metrics_.msg_out_total = reg.counter("driver/of/msg_out_total");
  metrics_.packet_in_total = reg.counter("driver/of/packet_in_total");
  metrics_.packet_out_total = reg.counter("driver/of/packet_out_total");
  metrics_.flow_mod_total = reg.counter("driver/of/flow_mod_total");
  metrics_.send_fail_total = reg.counter("driver/of/send_fail_total");
  metrics_.egress_gated_total = reg.counter("driver/of/egress_gated_total");
  metrics_.keepalive_timeout_total =
      reg.counter("driver/of/keepalive_timeout_total");
  metrics_.retry_total = reg.counter("driver/of/retry_total");
  metrics_.resync_total = reg.counter("driver/of/resync_total");
  metrics_.audit_total = reg.counter("driver/of/audit_total");
  metrics_.audit_repair_total = reg.counter("driver/of/audit_repair_total");
  metrics_.echo_rtt_ns = reg.histogram("driver/of/echo_rtt_ns");
  metrics_.batch_size = reg.histogram("driver/of/batch_size");
  metrics_.watch_depth = reg.gauge("netfs/watch_queue_depth");
  metrics_.watch_drops = reg.counter("netfs/watch_drop_total");
  metrics_.watch_coalesced = reg.counter("watch/coalesced_total");
  // Knobs surface read-only under /yanc/.stats so a shell can confirm
  // what pipeline a running driver is on.
  reg.gauge("driver/of/batching")->set(options_.batching ? 1 : 0);
  reg.gauge("driver/of/max_batch")
      ->set(static_cast<std::int64_t>(options_.max_batch));
  reg.gauge("driver/of/flush_interval")
      ->set(static_cast<std::int64_t>(options_.flush_interval));
}

OfDriver::~OfDriver() = default;

std::size_t OfDriver::connected_switches() const {
  std::size_t n = 0;
  for (const auto& conn : connections_)
    if (conn->state == Connection::State::ready && conn->channel.connected())
      ++n;
  return n;
}

Result<std::string> OfDriver::switch_name(std::uint64_t dpid) const {
  for (const auto& conn : connections_)
    if (conn->dpid == dpid && conn->state == Connection::State::ready)
      return conn->name;
  return Errc::not_found;
}

std::uint32_t OfDriver::send(Connection& conn, const ofp::Message& message) {
  // Cluster self-fence: a node that does not own this dpid must not
  // mutate it.  send_flow_mod gates the batched path before queueing;
  // this catches the direct sends (PACKET_OUT, PORT_MOD, unbatched mods).
  if (options_.egress_gate && !options_.egress_gate(conn.dpid) &&
      (std::holds_alternative<ofp::FlowMod>(message) ||
       std::holds_alternative<ofp::PacketOut>(message) ||
       std::holds_alternative<ofp::PortMod>(message))) {
    metrics_.egress_gated_total->add();
    return 0;
  }
  std::uint32_t xid = conn.next_xid++;
  auto bytes = ofp::encode(options_.version, xid, message);
  if (!bytes) {
    log_error("driver", "cannot encode " + ofp::message_name(message) +
                            " for OpenFlow " +
                            ofp::version_name(options_.version));
    return 0;
  }
  if (!conn.channel.send(std::move(*bytes))) {
    // Peer hung up (or a fault hook severed the link) — the reap pass
    // will mark the switch down; don't count the message as sent.
    metrics_.send_fail_total->add();
    return 0;
  }
  metrics_.msg_out_total->add();
  if (std::holds_alternative<ofp::FlowMod>(message))
    metrics_.flow_mod_total->add();
  else if (std::holds_alternative<ofp::PacketOut>(message))
    metrics_.packet_out_total->add();
  return xid;
}

void OfDriver::send_flow_mod(Connection& conn, const ofp::FlowMod& fm) {
  if (options_.egress_gate && !options_.egress_gate(conn.dpid)) {
    // Not the owner of this dpid: swallow the mod before it reaches the
    // burst — the owner's takeover resync replays the committed state.
    metrics_.egress_gated_total->add();
    return;
  }
  if (options_.batching) {
    queue_flow_mod(conn, fm);
    return;
  }
  std::uint32_t xid = send(conn, fm);
  if (xid == 0) return;
  // Stage the causal context under the message's xid: the switch claims
  // it on receipt, and the next tracked barrier (track_commit) adopts the
  // staged copy so its ack — or its loss — closes the trace.
  if (auto ref = obs::current_trace()) {
    obs::tracer().wire_put(conn.dpid, xid, ref);
    conn.egress.traces.push_back(ref);
    conn.egress.xids.push_back(xid);
  }
}

void OfDriver::queue_flow_mod(Connection& conn, const ofp::FlowMod& fm) {
  auto& eg = conn.egress;
  if (eg.mods == 0 && eg.bufs.empty()) eg.first_tick = tick_;
  if (!eg.enc) eg.enc.emplace(options_.version);
  std::uint32_t xid = conn.next_xid++;
  if (auto ec = eg.enc->append(xid, fm); ec) {
    log_error("driver", "cannot encode flow_mod for OpenFlow " +
                            ofp::version_name(options_.version) + ": " +
                            ec.message());
    return;
  }
  ++eg.mods;
  if (auto ref = obs::current_trace()) {
    obs::tracer().wire_put(conn.dpid, xid, ref);
    eg.traces.push_back(ref);
    eg.xids.push_back(xid);
  }
  if (eg.enc->count() >= options_.max_batch)
    eg.bufs.push_back(eg.enc->take());  // seal; enc is empty and reusable
}

void OfDriver::note_flow_mod_counter(Connection& conn) {
  if (options_.batching)
    ++conn.egress.counter_delta;  // one FS read-modify-write per burst
  else
    bump_counter(conn.path + "/counters/flow_mods");
}

void OfDriver::flush_egress(Connection& conn) {
  auto& eg = conn.egress;
  if (eg.mods == 0) {
    // Nothing queued; still settle any counter bumps owed (deletes whose
    // encode failed cannot happen, but keep the invariant simple).
    if (eg.counter_delta) {
      bump_counter(conn.path + "/counters/flow_mods", eg.counter_delta);
      eg.counter_delta = 0;
    }
    return;
  }
  if (options_.flush_interval &&
      tick_ - eg.first_tick < options_.flush_interval)
    return;  // burst still filling; a later poll ships it

  // One barrier covers the whole train: until its reply arrives none of
  // the burst's commits are assumed to have survived the wire (§3.4).
  std::uint32_t barrier_xid = 0;
  if (!eg.flows.empty()) {
    if (!eg.enc) eg.enc.emplace(options_.version);
    std::uint32_t xid = conn.next_xid++;
    if (!eg.enc->append(xid, ofp::BarrierRequest{}))
      barrier_xid = xid;  // Status: falsy == ok
  }
  if (eg.enc && !eg.enc->empty()) eg.bufs.push_back(eg.enc->take());

  metrics_.batch_size->record(eg.mods);
  std::size_t messages = eg.mods + (barrier_xid ? 1 : 0);
  std::uint64_t flow_mods = eg.mods;
  std::uint64_t counter_delta = eg.counter_delta;
  std::vector<std::string> flows = std::move(eg.flows);
  std::uint32_t retries = eg.retries;
  std::vector<obs::TraceRef> traces = std::move(eg.traces);
  std::vector<std::uint32_t> xids = std::move(eg.xids);
  bool ok = conn.channel.send_batch(std::move(eg.bufs));
  eg = Connection::Egress{};

  if (counter_delta)
    bump_counter(conn.path + "/counters/flow_mods", counter_delta);
  if (!ok) {
    // Peer gone (or a fault hook severed the link mid-burst): the reap /
    // reconnect resync re-pushes from the FS record.
    metrics_.send_fail_total->add();
    release_train(conn.dpid, xids, traces, "send failed; awaiting resync");
    return;
  }
  metrics_.msg_out_total->add(messages);
  metrics_.flow_mod_total->add(flow_mods);
  if (barrier_xid) {
    std::uint64_t wait = options_.request_timeout
                         << std::min<std::uint32_t>(retries, 16);
    auto& req = conn.pending[barrier_xid];
    req = PendingRequest{};
    req.flows = std::move(flows);
    req.deadline = tick_ + wait;
    req.retries = retries;
    if (!traces.empty()) {
      req.traces = std::move(traces);
      req.xids = std::move(xids);
      req.sent_ns = obs::Tracer::now_ns();
    }
  } else if (!traces.empty()) {
    // A train of pure deletes carries no barrier; no ack span is coming,
    // so close the carried traces here rather than leaking them.
    release_train(conn.dpid, {}, traces, "unbarriered train shipped");
  }
}

std::size_t OfDriver::poll() {
  ++tick_;
  std::size_t work = accept_new();
  // Pump even channels whose peer already closed: messages the switch
  // managed to send before dying are still queued (half-close) and must
  // be processed before the connection is reaped.
  for (auto& conn : connections_) work += pump_connection(*conn);
  work += drain_fs_events();
  service_timers();
  // Ship every burst the poll accumulated (drains, audit repairs,
  // retries) — one vectored train per switch per quantum, unless
  // flush_interval holds a still-filling burst for a later poll.
  if (options_.batching)
    for (auto& conn : connections_) flush_egress(*conn);

  // Reap dead connections: mark the FS, drop watches.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->channel.connected()) {
      ++it;
      continue;
    }
    Connection* conn = it->get();
    mark_down(*conn);
    for (auto ctx = watch_contexts_.begin(); ctx != watch_contexts_.end();)
      ctx = ctx->second.conn == conn ? watch_contexts_.erase(ctx)
                                     : std::next(ctx);
    it = connections_.erase(it);
    ++work;
  }
  return work;
}

std::size_t OfDriver::accept_new() {
  std::size_t accepted = 0;
  while (auto channel = listener_.accept()) {
    auto conn = std::make_unique<Connection>();
    conn->channel = std::move(*channel);
    conn->last_recv_tick = tick_;
    conn->last_audit_tick = tick_;
    conn->fs_queue =
        std::make_shared<vfs::WatchQueue>(options_.fs_queue_capacity);
    conn->fs_queue->set_coalescing(options_.batching &&
                                   options_.coalesce_watch_events);
    conn->fs_queue->bind_metrics(metrics_.watch_depth, metrics_.watch_drops,
                                 metrics_.watch_coalesced);
    send(*conn, ofp::Hello{});
    track_commit(*conn, {}, 0);  // tracked FeaturesRequest
    connections_.push_back(std::move(conn));
    ++accepted;
  }
  return accepted;
}

std::size_t OfDriver::pump_connection(Connection& conn) {
  std::size_t handled = 0;
  while (auto msg = conn.channel.try_recv()) {
    // Peers may pack several length-framed messages per buffer (the
    // switch side of the batched pipeline); split before decoding.
    auto frames = ofp::split_frames(*msg);
    if (!frames) {
      // Speaking the wrong dialect (or garbage): hang up, per §4.1 a
      // different driver owns that protocol version.
      log_error("driver", "unframeable message; closing connection");
      conn.channel.close();
      return handled;
    }
    for (auto frame : *frames) {
      auto decoded = ofp::decode(frame);
      if (!decoded) {
        log_error("driver", "undecodable message; closing connection");
        conn.channel.close();
        return handled;
      }
      if (decoded->header.version != options_.version) {
        send(conn, ofp::Error{0 /*HELLO_FAILED*/, 0 /*INCOMPATIBLE*/, {}});
        conn.channel.close();
        return handled;
      }
      metrics_.msg_in_total->add();
      conn.last_recv_tick = tick_;
      handle_switch_message(conn, *decoded);
      ++handled;
    }
  }
  return handled;
}

void OfDriver::handle_switch_message(Connection& conn,
                                     const ofp::Decoded& decoded) {
  const auto& m = decoded.message;
  // Reply-type messages acknowledge the tracked request with the same
  // xid.  (Switch-originated traffic keeps its own xid space and is not
  // consulted, so it cannot spuriously clear a pending retry.)
  if (std::holds_alternative<ofp::BarrierReply>(m) ||
      std::holds_alternative<ofp::FeaturesReply>(m) ||
      std::holds_alternative<ofp::EchoReply>(m) ||
      std::holds_alternative<ofp::StatsReply>(m) ||
      std::holds_alternative<ofp::Error>(m)) {
    auto it = conn.pending.find(decoded.header.xid);
    if (it != conn.pending.end()) {
      const auto& req = it->second;
      if (!req.traces.empty()) {
        // The barrier's reply vouches for every commit on the train:
        // close each carried trace with a commit_ack whose queue-wait is
        // the train's wire round-trip, then reclaim any handoff a lossy
        // link kept the switch from consuming (the audit repairs the
        // flow; the trace must not leak meanwhile).
        std::uint64_t now = obs::Tracer::now_ns();
        std::uint64_t rtt =
            req.sent_ns != 0 && now > req.sent_ns ? now - req.sent_ns : 0;
        for (const auto& ref : req.traces)
          (void)obs::tracer().child(ref, "driver", "commit_ack", now, now,
                                    rtt);
        for (std::uint32_t xid : req.xids)
          (void)obs::tracer().wire_take(conn.dpid, xid);
      }
      conn.pending.erase(it);
    }
  }
  if (std::holds_alternative<ofp::Hello>(m)) return;
  if (auto* echo = std::get_if<ofp::EchoRequest>(&m)) {
    send(conn, ofp::EchoReply{echo->data});
    return;
  }
  if (auto* reply = std::get_if<ofp::EchoReply>(&m)) {
    // ping_switches() stamps the request with the send time; the switch
    // echoes it back verbatim, so reply time minus payload = RTT.
    if (reply->data.size() == 8) {
      std::uint64_t sent = 0;
      for (int i = 0; i < 8; ++i)
        sent |= static_cast<std::uint64_t>(reply->data[i]) << (8 * i);
      auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
      if (static_cast<std::uint64_t>(now) >= sent)
        metrics_.echo_rtt_ns->record(static_cast<std::uint64_t>(now) - sent);
    }
    return;
  }
  if (auto* features = std::get_if<ofp::FeaturesReply>(&m)) {
    on_features(conn, *features);
    return;
  }
  if (auto* pi = std::get_if<ofp::PacketIn>(&m)) {
    on_packet_in(conn, *pi, decoded.header.xid);
    return;
  }
  if (auto* ps = std::get_if<ofp::PortStatus>(&m)) {
    on_port_status(conn, *ps);
    return;
  }
  if (auto* fr = std::get_if<ofp::FlowRemoved>(&m)) {
    on_flow_removed(conn, *fr);
    return;
  }
  if (auto* sr = std::get_if<ofp::StatsReply>(&m)) {
    on_stats_reply(conn, *sr, decoded.header.xid);
    return;
  }
  if (auto* err = std::get_if<ofp::Error>(&m)) {
    log_error("driver", conn.name + ": switch reported error type=" +
                            std::to_string(err->type) +
                            " code=" + std::to_string(err->code));
    return;
  }
  // barrier replies etc. need no action
}

void OfDriver::on_features(Connection& conn,
                           const ofp::FeaturesReply& features) {
  conn.dpid = features.datapath_id;

  // A reborn switch supersedes any zombie connection still carrying its
  // dpid: close the zombie and flag it so its reap cannot stomp the
  // status/connected files this connection is about to own.
  for (auto& other : connections_) {
    if (other.get() == &conn || other->dpid != conn.dpid || conn.dpid == 0)
      continue;
    other->superseded = true;
    other->channel.close();
  }

  // Reconnect support: reuse an existing directory whose id matches.
  std::string switches = options_.net_root + "/switches";
  if (auto entries = vfs_->readdir(switches)) {
    for (const auto& e : *entries) {
      auto id = vfs_->read_file(switches + "/" + e.name + "/id");
      if (!id) continue;
      auto parsed = parse_hex_u64(trim(*id));
      if (parsed && *parsed == conn.dpid && *parsed != 0) {
        conn.name = e.name;
        break;
      }
    }
  }
  // Fresh name: skip over names already taken by other switches (possibly
  // created by another driver instance on a replicated file system).
  while (conn.name.empty()) {
    std::string candidate = options_.switch_name_prefix +
                            std::to_string(next_switch_index_++);
    if (!vfs_->stat(switches + "/" + candidate)) conn.name = candidate;
  }
  conn.path = switches + "/" + conn.name;

  if (auto ec = vfs_->mkdir(conn.path);
      ec && ec != make_error_code(Errc::exists)) {
    log_error("driver", "cannot create " + conn.path + ": " + ec.message());
    conn.channel.close();
    return;
  }

  (void)vfs_->write_file(conn.path + "/id", "0x" + to_hex(conn.dpid, 8));
  (void)vfs_->write_file(conn.path + "/num_buffers",
                         std::to_string(features.n_buffers));
  (void)vfs_->write_file(conn.path + "/num_tables",
                         std::to_string(features.n_tables));
  (void)vfs_->write_file(conn.path + "/capabilities",
                         "0x" + to_hex(features.capabilities, 4));
  (void)vfs_->write_file(conn.path + "/actions",
                         "0x" + to_hex(features.actions, 4));
  (void)vfs_->write_file(conn.path + "/protocol_version",
                         ofp::version_name(options_.version));
  (void)vfs_->write_file(conn.path + "/connected", "1");
  (void)vfs_->write_file(conn.path + "/status", "up");

  create_switch_tree(conn, features.ports);
  conn.state = Connection::State::ready;

  // Identity strings arrive via desc stats; 1.3 ports via port_desc.
  ofp::StatsRequest desc;
  desc.kind = ofp::StatsKind::desc;
  send(conn, desc);
  if (options_.version == ofp::Version::of13) {
    ofp::StatsRequest ports;
    ports.kind = ofp::StatsKind::port_desc;
    send(conn, ports);
  }
}

namespace {

/// Registers `queue` on the node `path` resolves to; returns (handle, node).
Result<std::pair<std::shared_ptr<vfs::WatchHandle>, NodeId>> watch_node(
    vfs::Vfs& vfs, const std::string& path, std::uint32_t mask,
    vfs::WatchQueuePtr queue) {
  auto resolved = vfs.resolve(path, Credentials::root());
  if (!resolved) return resolved.error();
  auto id = resolved->fs->watch(resolved->node, mask, std::move(queue));
  if (!id) return id.error();
  return std::make_pair(
      std::make_shared<vfs::WatchHandle>(resolved->fs, *id), resolved->node);
}

}  // namespace

void OfDriver::create_switch_tree(Connection& conn,
                                  const std::vector<ofp::PortDesc>& ports) {
  for (const auto& port : ports) create_port_dir(conn, port);

  // Watch flows/ for new and deleted flow directories.
  std::string flows_dir = conn.path + "/flows";
  if (auto w = watch_node(*vfs_, flows_dir,
                          vfs::event::created | vfs::event::deleted,
                          conn.fs_queue)) {
    conn.watches[flows_dir] = w->first;
    watch_contexts_[w->second] =
        WatchContext{WatchContext::Kind::flows_dir, &conn, {}};
  }
  // Watch packet_out/ for new requests.
  std::string pktout_dir = conn.path + "/packet_out";
  if (auto w = watch_node(*vfs_, pktout_dir, vfs::event::created,
                          conn.fs_queue)) {
    conn.watches[pktout_dir] = w->first;
    watch_contexts_[w->second] =
        WatchContext{WatchContext::Kind::pktout_dir, &conn, {}};
  }

  // Flows may already exist (reconnect): adopt and push committed ones.
  // This is the FS-driven resync — the directory tree, not driver RAM,
  // is the record a reborn switch is restored from (§3.4).
  if (auto names = vfs_->readdir(flows_dir)) {
    for (const auto& e : *names) {
      watch_flow(conn, e.name);
      push_flow(conn, e.name);
      if (conn.flows[e.name].pushed_version > 0)
        metrics_.resync_total->add();
    }
  }
}

void OfDriver::create_port_dir(Connection& conn, const ofp::PortDesc& port) {
  std::string port_path =
      conn.path + "/ports/" + std::to_string(port.port_no);
  if (auto ec = vfs_->mkdir(port_path);
      ec && ec != make_error_code(Errc::exists))
    return;
  (void)vfs_->write_file(port_path + "/port_no",
                         std::to_string(port.port_no));
  (void)vfs_->write_file(port_path + "/hw_addr", port.hw_addr.to_string());
  (void)vfs_->write_file(port_path + "/name", port.name);
  (void)vfs_->write_file(port_path + "/config.port_down",
                         port.port_down ? "1" : "0");
  (void)vfs_->write_file(port_path + "/state.link_down",
                         port.link_down ? "1" : "0");
  (void)vfs_->write_file(port_path + "/curr_speed",
                         std::to_string(port.curr_speed_kbps));
  (void)vfs_->write_file(port_path + "/max_speed",
                         std::to_string(port.max_speed_kbps));
  conn.port_hw_config[port.port_no] = {port.port_down, port.no_flood};

  // Administrative changes to the port flow back as PORT_MOD (§3.1's
  // `echo 1 > config.port_down`).
  for (const char* file : {"config.port_down", "config.no_flood"}) {
    std::string cfg = port_path + "/" + file;
    if (auto w = watch_node(*vfs_, cfg, vfs::event::modified,
                            conn.fs_queue)) {
      conn.watches[cfg] = w->first;
      watch_contexts_[w->second] =
          WatchContext{WatchContext::Kind::port_config, &conn,
                       std::to_string(port.port_no)};
    }
  }
}

void OfDriver::watch_flow(Connection& conn, const std::string& flow_name) {
  std::string version_path =
      conn.path + "/flows/" + flow_name + "/version";
  auto w = watch_node(*vfs_, version_path, vfs::event::modified,
                      conn.fs_queue);
  if (!w) return;
  auto& state = conn.flows[flow_name];
  state.version_watch = w->first;
  state.version_node = w->second;
  watch_contexts_[w->second] =
      WatchContext{WatchContext::Kind::flow_version, &conn, flow_name};
}

void OfDriver::push_flow(Connection& conn, const std::string& flow_name,
                         std::uint32_t retries) {
  auto state_it = conn.flows.find(flow_name);
  if (state_it == conn.flows.end()) return;
  auto& state = state_it->second;

  std::string flow_dir = conn.path + "/flows/" + flow_name;
  // The batch consumer amortizes the read too: one readdir replaces the
  // ~20 negative probes of the field-by-field path (docs/PERFORMANCE.md).
  auto spec = options_.batching ? netfs::read_flow_sparse(*vfs_, flow_dir)
                                : netfs::read_flow(*vfs_, flow_dir);
  if (!spec) {
    log_error("driver", "unreadable flow " + flow_dir + ": " +
                            spec.error().message());
    return;
  }
  if (spec->version == 0 || spec->version <= state.pushed_version)
    return;  // not committed / already on hardware (§3.4)

  // If the identity (match, priority, table) changed, the old hardware
  // entry must go first; OpenFlow add only replaces identical identities.
  if (state.pushed_version > 0 &&
      (state.pushed.match != spec->match ||
       state.pushed.priority != spec->priority ||
       state.pushed.table_id != spec->table_id)) {
    ofp::FlowMod del;
    del.command = ofp::FlowMod::Command::remove_strict;
    del.spec = state.pushed;
    send_flow_mod(conn, del);
  }

  ofp::FlowMod add;
  add.command = ofp::FlowMod::Command::add;
  add.spec = *spec;
  add.flags = ofp::kFlagSendFlowRemoved;
  send_flow_mod(conn, add);
  note_flow_mod_counter(conn);
  // A barrier covers the commit; until its reply arrives the flow_mod is
  // not assumed to have survived the wire.  Batching defers the barrier
  // to the burst's flush — one barrier vouches for the whole train.
  if (options_.batching) {
    conn.egress.flows.push_back(flow_name);
    conn.egress.retries = std::max(conn.egress.retries, retries);
  } else {
    track_commit(conn, {flow_name}, retries);
  }

  state.pushed_version = spec->version;
  state.pushed = *spec;
}

std::size_t OfDriver::drain_fs_events() {
  std::size_t handled = 0;
  // One shard per switch: a burst of commits on sw1 drains — and ships —
  // without touching sw2's queue, and an overflow rescans only its own
  // switch.  Iterate by index: handlers (pktout, audits) never add
  // connections, but reap-safety is poll()'s job, not drain's.
  for (auto& conn : connections_)
    handled += options_.batching ? drain_shard_batched(*conn)
                                 : drain_shard(*conn);
  return handled;
}

// Shared by both drain paths: everything except flow pushes.  Returns
// true when it consumed the event; flow-commit events (flows_dir,
// flow_version) are left for the caller, which is where the two
// pipelines differ.
bool OfDriver::handle_aux_event(Connection& conn, const vfs::Event& event,
                                const WatchContext& ctx,
                                std::set<NodeId>& seen_level_triggered) {
  switch (ctx.kind) {
    case WatchContext::Kind::flows_dir:
    case WatchContext::Kind::flow_version:
      return false;
    case WatchContext::Kind::port_config: {
      if (!seen_level_triggered.insert(event.node).second) return true;
      std::string port_path = conn.path + "/ports/" + ctx.name;
      ofp::PortMod pm;
      pm.port_no =
          static_cast<std::uint16_t>(parse_u64(ctx.name).value_or(0));
      if (auto mac = vfs_->read_file(port_path + "/hw_addr"))
        if (auto parsed = MacAddress::parse(trim(*mac)))
          pm.hw_addr = *parsed;
      if (auto down = vfs_->read_file(port_path + "/config.port_down"))
        pm.port_down = trim(*down) == "1";
      if (auto nf = vfs_->read_file(port_path + "/config.no_flood"))
        pm.no_flood = trim(*nf) == "1";
      auto known = conn.port_hw_config.find(pm.port_no);
      if (known != conn.port_hw_config.end() &&
          known->second == std::make_pair(pm.port_down, pm.no_flood))
        return true;  // FS already agrees with hardware: nothing to do
      send(conn, pm);
      return true;
    }
    case WatchContext::Kind::pktout_dir:
      if (event.is(vfs::event::created)) {
        std::string send_path =
            conn.path + "/packet_out/" + event.name + "/send";
        if (auto w = watch_node(*vfs_, send_path, vfs::event::modified,
                                conn.fs_queue)) {
          conn.watches[send_path] = w->first;
          watch_contexts_[w->second] = WatchContext{
              WatchContext::Kind::pktout_send, &conn, event.name};
        }
        // The app may have set send=1 before this watch existed.
        if (auto flag = vfs_->read_file(send_path);
            flag && trim(*flag) == "1")
          send_packet_out_dir(conn, event.name);
      }
      return true;
    case WatchContext::Kind::pktout_send: {
      if (!seen_level_triggered.insert(event.node).second) return true;
      std::string send_path =
          conn.path + "/packet_out/" + ctx.name + "/send";
      if (auto flag = vfs_->read_file(send_path); flag && trim(*flag) == "1")
        send_packet_out_dir(conn, ctx.name);
      return true;
    }
  }
  return true;
}

// Handles a flows_dir deletion; shared by both drain paths.
void OfDriver::handle_flow_deleted(Connection& conn,
                                   const std::string& name) {
  auto it = conn.flows.find(name);
  if (it == conn.flows.end()) return;
  if (conn.suppress_delete.erase(name) == 0 &&
      it->second.pushed_version > 0) {
    ofp::FlowMod del;
    del.command = ofp::FlowMod::Command::remove_strict;
    del.spec = it->second.pushed;
    send_flow_mod(conn, del);
    note_flow_mod_counter(conn);
  }
  watch_contexts_.erase(it->second.version_node);
  conn.flows.erase(it);
}

std::size_t OfDriver::drain_shard(Connection& conn) {
  std::size_t handled = 0;
  // Level-triggered contexts (flow versions, port configs, packet-out
  // send flags) are read-current-state handlers: several queued MODIFY
  // events for the same node collapse into one action per drain.
  std::set<NodeId> seen_level_triggered;
  while (auto event = conn.fs_queue->try_pop()) {
    ++handled;
    if (event->is(vfs::event::overflow)) {
      // This shard overflowed: rescan this switch (only this switch).
      log_error("driver", conn.name + ": watch queue overflow; rescanning");
      if (conn.state == Connection::State::ready) rescan_flows(conn);
      continue;
    }
    auto ctx_it = watch_contexts_.find(event->node);
    if (ctx_it == watch_contexts_.end()) continue;
    WatchContext ctx = ctx_it->second;
    if (handle_aux_event(conn, *event, ctx, seen_level_triggered)) continue;

    if (ctx.kind == WatchContext::Kind::flows_dir) {
      if (event->is(vfs::event::created)) {
        watch_flow(conn, event->name);
        CommitTrace trace(event->trace, event->trace_ts_ns);
        push_flow(conn, event->name);  // may already be committed
      } else if (event->is(vfs::event::deleted)) {
        CommitTrace trace(event->trace, event->trace_ts_ns);
        handle_flow_deleted(conn, event->name);
      }
    } else {  // flow_version
      if (seen_level_triggered.insert(event->node).second) {
        CommitTrace trace(event->trace, event->trace_ts_ns);
        push_flow(conn, ctx.name);
      }
    }
  }
  return handled;
}

std::size_t OfDriver::drain_shard_batched(Connection& conn) {
  std::size_t handled = 0;
  std::set<NodeId> seen_level_triggered;
  // A burst's commit events dedup to one read+push per flow: a create
  // immediately followed by its version commit — the common write_flow
  // pattern — costs one FS read instead of two.  Deletions are handled
  // in event order (so a delete queued between two commits still lands
  // between the surviving pushes on the wire), and a flow deleted after
  // being marked dirty simply fails the final read and pushes nothing:
  // the terminal state wins.
  std::vector<std::string> dirty;
  std::set<std::string> dirty_set;
  auto mark_dirty = [&](const std::string& name) {
    if (dirty_set.insert(name).second) dirty.push_back(name);
  };
  // Per-flow causal state for the deferred pushes: a burst dedups many
  // events into one push, so the push must carry every ref those events
  // held (including refs coalescing packed into a single event) and the
  // *oldest* enqueue time — queue-wait is measured from the first work
  // the push answers for.  Bounded like the event's own ref list.
  struct PendingTrace {
    std::vector<obs::TraceRef> refs;
    std::uint64_t ts_ns = 0;
  };
  std::map<std::string, PendingTrace> flow_traces;
  auto absorb_trace = [&](const std::string& name, const vfs::Event& event) {
    if (event.trace.empty()) return;
    auto& pending = flow_traces[name];
    for (const auto& ref : event.trace) {
      if (pending.refs.size() >= vfs::kMaxTraceRefs) break;
      pending.refs.push_back(ref);
    }
    if (event.trace_ts_ns != 0 &&
        (pending.ts_ns == 0 || event.trace_ts_ns < pending.ts_ns))
      pending.ts_ns = event.trace_ts_ns;
  };
  std::vector<vfs::Event> batch;
  while (conn.fs_queue->try_pop_batch(batch, options_.max_batch) > 0) {
    for (const auto& event : batch) {
      ++handled;
      if (event.is(vfs::event::overflow)) {
        log_error("driver",
                  conn.name + ": watch queue overflow; rescanning");
        if (conn.state == Connection::State::ready) rescan_flows(conn);
        continue;
      }
      auto ctx_it = watch_contexts_.find(event.node);
      if (ctx_it == watch_contexts_.end()) continue;
      WatchContext ctx = ctx_it->second;
      if (handle_aux_event(conn, event, ctx, seen_level_triggered))
        continue;

      if (ctx.kind == WatchContext::Kind::flows_dir) {
        if (event.is(vfs::event::created)) {
          watch_flow(conn, event.name);
          mark_dirty(event.name);
          absorb_trace(event.name, event);
        } else if (event.is(vfs::event::deleted)) {
          CommitTrace trace(event.trace, event.trace_ts_ns);
          handle_flow_deleted(conn, event.name);
        }
      } else {  // flow_version: level-triggered, once per burst
        if (seen_level_triggered.insert(event.node).second)
          mark_dirty(ctx.name);
        // Refs accumulate even for deduped repeats: the one push answers
        // for every commit event the burst folded into it.
        absorb_trace(ctx.name, event);
      }
    }
    batch.clear();
  }
  // Push every dirty flow once, in first-marked order; push_flow reads
  // the *current* FS state, so a recreate during the burst pushes the
  // new incarnation and a deletion pushes nothing.
  for (const auto& name : dirty) {
    auto traced = flow_traces.find(name);
    CommitTrace trace(
        traced == flow_traces.end() ? std::vector<obs::TraceRef>{}
                                    : traced->second.refs,
        traced == flow_traces.end() ? 0 : traced->second.ts_ns);
    push_flow(conn, name);
  }
  return handled;
}

void OfDriver::rescan_flows(Connection& conn) {
  std::string flows_dir = conn.path + "/flows";
  auto names = vfs_->readdir(flows_dir);
  if (!names) return;

  std::set<std::string> present;
  for (const auto& e : *names) {
    present.insert(e.name);
    auto it = conn.flows.find(e.name);
    if (it != conn.flows.end()) {
      // The flow may have been deleted and recreated under the same name
      // while events were being lost, leaving our version watch armed on
      // a dead inode.  Compare nodes and re-arm when they differ.
      auto resolved = vfs_->resolve(flows_dir + "/" + e.name + "/version",
                                    Credentials::root());
      if (resolved && resolved->node == it->second.version_node) {
        push_flow(conn, e.name);
        continue;
      }
      // Different version node: the flow was deleted and recreated.  The
      // spec the dead incarnation pushed is no longer in the FS, so take
      // it off the hardware before adopting the new one.
      if (conn.suppress_delete.erase(e.name) == 0 &&
          it->second.pushed_version > 0) {
        ofp::FlowMod del;
        del.command = ofp::FlowMod::Command::remove_strict;
        del.spec = it->second.pushed;
        send_flow_mod(conn, del);
        note_flow_mod_counter(conn);
      }
      watch_contexts_.erase(it->second.version_node);
      conn.flows.erase(it);
    }
    watch_flow(conn, e.name);
    push_flow(conn, e.name);
  }

  // Deletions whose events were lost: the hardware entry must go too.
  for (auto it = conn.flows.begin(); it != conn.flows.end();) {
    if (present.count(it->first)) {
      ++it;
      continue;
    }
    if (conn.suppress_delete.erase(it->first) == 0 &&
        it->second.pushed_version > 0) {
      ofp::FlowMod del;
      del.command = ofp::FlowMod::Command::remove_strict;
      del.spec = it->second.pushed;
      send_flow_mod(conn, del);
      note_flow_mod_counter(conn);
    }
    watch_contexts_.erase(it->second.version_node);
    it = conn.flows.erase(it);
  }
}

void OfDriver::abandon_switch(std::uint64_t dpid) {
  if (dpid == 0) return;
  for (auto& connp : connections_) {
    Connection& conn = *connp;
    if (conn.dpid != dpid || !conn.channel.connected()) continue;
    // No reply is coming over a channel we are about to close: end the
    // tracked trains' traces at the release instead of leaking them.
    for (auto& [xid, request] : conn.pending)
      release_train(conn.dpid, request.xids, request.traces,
                    "lease released");
    conn.pending.clear();
    // superseded = the reap must not write status=down: the successor
    // owns the directory record now and has already marked it up.
    conn.superseded = true;
    conn.channel.close();
  }
}

void OfDriver::mark_down(Connection& conn) {
  // However the switch died, no reply is coming for anything still
  // tracked: close out every carried trace so chains end at the fault
  // instead of leaking, even for zombies the guard below skips.
  for (auto& [xid, request] : conn.pending)
    release_train(conn.dpid, request.xids, request.traces, "connection lost");
  conn.pending.clear();
  if (conn.down_marked || conn.superseded || conn.path.empty()) return;
  conn.down_marked = true;
  (void)vfs_->write_file(conn.path + "/status", "down");
  (void)vfs_->write_file(conn.path + "/connected", "0");
}

void OfDriver::track_commit(Connection& conn, std::vector<std::string> flows,
                            std::uint32_t retries) {
  std::uint32_t xid =
      flows.empty()
          ? send(conn, ofp::FeaturesRequest{})
          : send(conn, ofp::BarrierRequest{});
  if (!xid) return;
  // Bounded exponential backoff: timeout doubles per retry (shift capped
  // so the arithmetic can't overflow).
  std::uint64_t wait = options_.request_timeout
                       << std::min<std::uint32_t>(retries, 16);
  auto& req = conn.pending[xid];
  req = PendingRequest{};
  req.flows = std::move(flows);
  req.deadline = tick_ + wait;
  req.retries = retries;
  // Adopt contexts staged by send_flow_mod since the last tracked request
  // (per-event pipeline: the barrier right after each push).  A preceding
  // untracked delete's context rides along too — correctly, since this
  // barrier vouches for everything sent before it.
  if (!conn.egress.traces.empty()) {
    req.traces = std::move(conn.egress.traces);
    req.xids = std::move(conn.egress.xids);
    req.sent_ns = obs::Tracer::now_ns();
    conn.egress.traces.clear();
    conn.egress.xids.clear();
  }
}

void OfDriver::retry_request(Connection& conn,
                             const PendingRequest& request) {
  metrics_.retry_total->add();
  std::uint32_t retries = request.retries + 1;
  // The lost train's wire handoffs are dead (reclaim them) and its
  // traces record the fault; the surviving refs then ride the retry
  // train, so the eventual ack still closes every original trace.
  release_train(conn.dpid, request.xids, request.traces,
                "retry " + std::to_string(retries));
  if (request.flows.empty()) {
    // Handshake lost on the wire: ask again.
    if (conn.state == Connection::State::handshaking)
      track_commit(conn, {}, retries);
    return;
  }
  // Re-stage the traces *before* re-pushing: non-batching's track_commit
  // (called inside push_flow) and batching's flush both adopt the staged
  // list, so the retry train's tracked request inherits them either way.
  conn.egress.traces.insert(conn.egress.traces.end(), request.traces.begin(),
                            request.traces.end());
  // The lost barrier vouched for every commit on its train: re-push them
  // all.  (Batching gathers the re-pushes into one new train at flush.)
  for (const auto& flow_name : request.flows) {
    auto it = conn.flows.find(flow_name);
    if (it == conn.flows.end()) continue;  // deleted; audit covers it
    it->second.pushed_version = 0;         // force the re-send
    push_flow(conn, flow_name, retries);
  }
  if (!options_.batching) return;
  // The per-flow track_commit path is bypassed when batching; make sure
  // the retry count rides the next train even if push_flow skipped work.
  conn.egress.retries = std::max(conn.egress.retries, retries);
}

void OfDriver::service_timers() {
  for (auto& connp : connections_) {
    Connection& conn = *connp;
    if (!conn.channel.connected() || conn.superseded) continue;

    // Liveness: silent for too long -> down; idle -> keepalive echo.
    if (options_.keepalive_timeout &&
        tick_ - conn.last_recv_tick >= options_.keepalive_timeout) {
      metrics_.keepalive_timeout_total->add();
      log_error("driver", (conn.name.empty() ? "<handshake>" : conn.name) +
                              ": keepalive timeout; declaring down");
      mark_down(conn);
      conn.channel.close();
      continue;
    }
    if (options_.keepalive_interval &&
        conn.state == Connection::State::ready &&
        tick_ - conn.last_recv_tick >= options_.keepalive_interval &&
        tick_ - conn.last_ping_tick >= options_.keepalive_interval) {
      conn.last_ping_tick = tick_;
      auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
      ofp::EchoRequest ping;
      ping.data.resize(8);
      for (int i = 0; i < 8; ++i)
        ping.data[i] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(now) >> (8 * i));
      send(conn, ping);
    }

    // Tracked-request timeouts with bounded retries.
    std::vector<PendingRequest> expired;
    for (auto it = conn.pending.begin(); it != conn.pending.end();) {
      if (tick_ < it->second.deadline) {
        ++it;
        continue;
      }
      expired.push_back(it->second);
      it = conn.pending.erase(it);
    }
    for (const auto& request : expired) {
      if (request.retries >= options_.max_retries) {
        log_error("driver",
                  (conn.name.empty() ? "<handshake>" : conn.name) +
                      ": request abandoned after " +
                      std::to_string(request.retries) +
                      " retries; declaring down");
        release_train(conn.dpid, request.xids, request.traces,
                      "abandoned after " + std::to_string(request.retries) +
                          " retries");
        mark_down(conn);
        conn.channel.close();
        break;
      }
      retry_request(conn, request);
    }
    if (!conn.channel.connected()) continue;

    // Periodic audit: barriers confirm ordering, not delivery of what
    // came before them on a lossy link; the audit compares the FS (the
    // record) against hardware (flow stats) and repairs the difference.
    // An audit still outstanding after a whole further interval is
    // presumed lost (request or reply eaten by the wire) and replaced —
    // its xid must not wedge auditing for good.
    if (options_.audit_interval && conn.state == Connection::State::ready &&
        tick_ - conn.last_audit_tick >= options_.audit_interval) {
      conn.last_audit_tick = tick_;
      absorb_duplicate_dirs(conn);
      ofp::StatsRequest flows;
      flows.kind = ofp::StatsKind::flow;
      conn.audit_xid = send(conn, flows);
      if (conn.audit_xid) metrics_.audit_total->add();
    }
  }
}

void OfDriver::absorb_duplicate_dirs(Connection& conn) {
  // Only the shard's current owner may arbitrate a split identity; a
  // deposed driver merging toward ITS tree would undo the successor's.
  if (options_.egress_gate && !options_.egress_gate(conn.dpid)) return;
  std::string switches = options_.net_root + "/switches";
  auto entries = vfs_->readdir(switches);
  if (!entries) return;
  for (const auto& e : *entries) {
    if (e.name == conn.name) continue;
    std::string dir = switches + "/" + e.name;
    auto id = vfs_->read_file(dir + "/id");
    if (!id) continue;
    auto parsed = parse_hex_u64(trim(*id));
    if (!parsed || *parsed != conn.dpid) continue;
    bool in_flight = false;
    if (auto flows = vfs_->readdir(dir + "/flows")) {
      for (const auto& f : *flows) {
        auto spec = netfs::read_flow(*vfs_, dir + "/flows/" + f.name);
        if (!spec || spec->version == 0) {
          // No version file yet.  This may be a committed flow whose
          // version write is still replicating toward us; a tombstone
          // written now carries a newer timestamp and would eat that
          // write when it lands — an acknowledged commit lost.  Hold the
          // removal for a later audit (bounded below, so a genuinely
          // uncommitted stray cannot pin the duplicate forever).
          in_flight = true;
          continue;
        }
        std::string ours = conn.path + "/flows/" + f.name;
        auto mine = netfs::read_flow(*vfs_, ours);
        // Same name on both sides: ours wins — the lease makes this tree
        // the one the switch currently enforces.
        if (mine && mine->version > 0) continue;
        metrics_.resync_total->add();
        // The write lands in our own watched flows/ dir, so the normal
        // commit pipeline pushes it to hardware.
        if (netfs::write_flow(*vfs_, ours, *spec))
          log_error("driver", conn.name + ": duplicate-dir flow " + f.name +
                                  " could not be re-committed");
      }
    }
    if (in_flight && absorb_deferred_[dir]++ < 2) continue;
    absorb_deferred_.erase(dir);
    log_error("driver", conn.name + ": absorbing duplicate directory " +
                            e.name + " for dpid " + std::to_string(conn.dpid));
    // rmdir, not remove_all: the switch object allows recursive rmdir,
    // while remove_all's recursion would trip over the schema's fixed
    // dirs (flows/, ports/ ... are not individually removable).
    (void)vfs_->rmdir(dir);
  }
}

void OfDriver::audit_reconcile(Connection& conn, const ofp::StatsReply& sr) {
  // Ground truth is the FS: every committed flows/<name> must be on the
  // hardware, and nothing else may be.
  std::string flows_dir = conn.path + "/flows";
  auto names = vfs_->readdir(flows_dir);
  if (!names) return;

  std::vector<const flow::FlowSpec*> hardware;
  for (const auto& entry : sr.flows) hardware.push_back(&entry.spec);
  std::vector<bool> claimed(hardware.size(), false);

  for (const auto& e : *names) {
    auto spec = netfs::read_flow(*vfs_, flows_dir + "/" + e.name);
    if (!spec || spec->version == 0) continue;  // uncommitted: not expected
    bool found = false;
    for (std::size_t i = 0; i < hardware.size(); ++i) {
      if (claimed[i]) continue;
      if (hardware[i]->match == spec->match &&
          hardware[i]->priority == spec->priority &&
          hardware[i]->table_id == spec->table_id) {
        claimed[i] = found = true;
        break;
      }
    }
    if (found) continue;
    // Committed in the FS, absent from hardware: a flow_mod died on the
    // wire after its barrier survived.  Re-push from the record.
    metrics_.audit_repair_total->add();
    metrics_.resync_total->add();
    auto it = conn.flows.find(e.name);
    if (it == conn.flows.end()) {
      watch_flow(conn, e.name);
      it = conn.flows.find(e.name);
      if (it == conn.flows.end()) continue;
    }
    it->second.pushed_version = 0;
    push_flow(conn, e.name);
  }

  // Hardware entries no FS flow claims: stale state from a previous life
  // (or a delete whose flow_mod was lost).  Remove them.
  for (std::size_t i = 0; i < hardware.size(); ++i) {
    if (claimed[i]) continue;
    metrics_.audit_repair_total->add();
    ofp::FlowMod del;
    del.command = ofp::FlowMod::Command::remove_strict;
    del.spec = *hardware[i];
    send_flow_mod(conn, del);
  }
}

void OfDriver::send_packet_out_dir(Connection& conn, const std::string& name) {
  std::string dir = conn.path + "/packet_out/" + name;
  ofp::PacketOut po;
  if (auto in = vfs_->read_file(dir + "/in_port"))
    po.in_port =
        static_cast<std::uint16_t>(parse_u64(trim(*in)).value_or(0));
  if (auto out = vfs_->read_file(dir + "/out")) {
    for (const auto& tok : split_nonempty(trim(*out), ' ')) {
      auto action = flow::parse_action("out", tok);
      if (action) po.actions.push_back(*action);
    }
  }
  if (auto data = vfs_->read_file(dir + "/data"))
    po.data.assign(data->begin(), data->end());
  send(conn, po);
  bump_counter(conn.path + "/counters/packet_outs");

  // Consume the request (watch contexts for the send file die with it).
  if (auto resolved = vfs_->resolve(dir + "/send", Credentials::root()))
    watch_contexts_.erase(resolved->node);
  conn.watches.erase(dir + "/send");
  (void)vfs_->rmdir(dir);
}

void OfDriver::on_packet_in(Connection& conn, const ofp::PacketIn& pi,
                            std::uint32_t xid) {
  metrics_.packet_in_total->add();
  // Claim the context the switch staged under this message's xid: the
  // wait since wire_put is the packet-in's time on the channel.  The
  // span's scope covers the pkt_* fan-out below, so the FS events those
  // writes emit — and the per-app handoffs — all parent to this stage.
  obs::Tracer::Handoff handoff;
  if (obs::tracer().enabled()) handoff = obs::tracer().wire_take(conn.dpid, xid);
  obs::Span trace_span(handoff.ref, "driver", "packet_in",
                       handoff ? obs::Tracer::now_ns() - handoff.ts_ns : 0);
  obs::TraceScope trace_scope(trace_span.ref());
  bump_counter(conn.path + "/counters/packet_ins");
  std::string events_dir = options_.net_root + "/events";
  auto apps = vfs_->readdir(events_dir);
  if (!apps) return;
  // Concurrent delivery to every interested application (§3.5): each app's
  // private buffer receives its own copy.
  char seq[24];
  std::snprintf(seq, sizeof seq, "pkt_%010llu",
                static_cast<unsigned long long>(next_pkt_seq_++));
  for (const auto& app : *apps) {
    if (app.type != vfs::FileType::directory) continue;
    std::string pkt_dir = events_dir + "/" + app.name + "/" + seq;
    if (vfs_->mkdir(pkt_dir)) continue;
    (void)vfs_->write_file(pkt_dir + "/datapath", conn.name);
    (void)vfs_->write_file(pkt_dir + "/in_port",
                           std::to_string(pi.in_port));
    (void)vfs_->write_file(pkt_dir + "/reason",
                           pi.reason == ofp::PacketIn::Reason::no_match
                               ? "no_match"
                               : "action");
    (void)vfs_->write_file(pkt_dir + "/buffer_id",
                           std::to_string(pi.buffer_id));
    (void)vfs_->write_file(pkt_dir + "/total_len",
                           std::to_string(pi.total_len));
    (void)vfs_->write_file(
        pkt_dir + "/data",
        std::string_view(reinterpret_cast<const char*>(pi.data.data()),
                         pi.data.size()));
    // Each app drains its buffer on its own thread; hand the context over
    // keyed by the pkt directory (the only identity that crosses).
    obs::tracer().path_put(pkt_dir, trace_span.ref());
  }
}

void OfDriver::on_port_status(Connection& conn, const ofp::PortStatus& ps) {
  std::string port_path =
      conn.path + "/ports/" + std::to_string(ps.desc.port_no);
  switch (ps.reason) {
    case ofp::PortStatus::Reason::add:
      create_port_dir(conn, ps.desc);
      break;
    case ofp::PortStatus::Reason::remove:
      (void)vfs_->rmdir(port_path);
      break;
    case ofp::PortStatus::Reason::modify:
      conn.port_hw_config[ps.desc.port_no] = {ps.desc.port_down,
                                              ps.desc.no_flood};
      (void)vfs_->write_file(port_path + "/state.link_down",
                             ps.desc.link_down ? "1" : "0");
      (void)vfs_->write_file(port_path + "/config.port_down",
                             ps.desc.port_down ? "1" : "0");
      break;
  }
}

void OfDriver::on_flow_removed(Connection& conn, const ofp::FlowRemoved& fr) {
  bump_counter(conn.path + "/counters/flow_expirations");
  for (auto& [name, state] : conn.flows) {
    if (state.pushed.match == fr.match &&
        state.pushed.priority == fr.priority) {
      // Hardware dropped the entry; mirror it out of the FS without
      // bouncing another delete to the switch.
      conn.suppress_delete.insert(name);
      (void)vfs_->rmdir(conn.path + "/flows/" + name);
      return;
    }
  }
}

void OfDriver::on_stats_reply(Connection& conn, const ofp::StatsReply& sr,
                              std::uint32_t xid) {
  if (sr.kind == ofp::StatsKind::flow && xid != 0 &&
      xid == conn.audit_xid) {
    conn.audit_xid = 0;
    audit_reconcile(conn, sr);
  }
  switch (sr.kind) {
    case ofp::StatsKind::desc:
      (void)vfs_->write_file(conn.path + "/manufacturer", sr.manufacturer);
      (void)vfs_->write_file(conn.path + "/hw_desc", sr.hw_desc);
      (void)vfs_->write_file(conn.path + "/sw_desc", sr.sw_desc);
      break;
    case ofp::StatsKind::port_desc:
      for (const auto& port : sr.port_descs) create_port_dir(conn, port);
      break;
    case ofp::StatsKind::flow:
      for (const auto& entry : sr.flows) {
        for (const auto& [name, state] : conn.flows) {
          if (state.pushed.match == entry.spec.match &&
              state.pushed.priority == entry.spec.priority) {
            (void)netfs::write_flow_stats(
                *vfs_, conn.path + "/flows/" + name,
                {entry.packet_count, entry.byte_count});
            break;
          }
        }
      }
      break;
    case ofp::StatsKind::queue:
      for (const auto& q : sr.queues) {
        // Queue directories appear on first use (the switch reports them;
        // administrators may also pre-create them to set rates).
        std::string queue_dir = conn.path + "/ports/" +
                                std::to_string(q.port_no) + "/queues/q" +
                                std::to_string(q.queue_id);
        if (auto st = vfs_->stat(queue_dir); !st) {
          if (vfs_->mkdir(queue_dir)) continue;
          (void)vfs_->write_file(queue_dir + "/queue_id",
                                 std::to_string(q.queue_id));
        }
        (void)vfs_->write_file(queue_dir + "/counters/tx_packets",
                               std::to_string(q.tx_packets));
        (void)vfs_->write_file(queue_dir + "/counters/tx_bytes",
                               std::to_string(q.tx_bytes));
      }
      break;
    case ofp::StatsKind::port:
      for (const auto& port : sr.ports) {
        std::string counters = conn.path + "/ports/" +
                               std::to_string(port.port_no) + "/counters";
        (void)vfs_->write_file(counters + "/rx_packets",
                               std::to_string(port.rx_packets));
        (void)vfs_->write_file(counters + "/tx_packets",
                               std::to_string(port.tx_packets));
        (void)vfs_->write_file(counters + "/rx_bytes",
                               std::to_string(port.rx_bytes));
        (void)vfs_->write_file(counters + "/tx_bytes",
                               std::to_string(port.tx_bytes));
      }
      break;
  }
}

void OfDriver::request_stats() {
  for (auto& conn : connections_) {
    if (conn->state != Connection::State::ready ||
        !conn->channel.connected())
      continue;
    ofp::StatsRequest flows;
    flows.kind = ofp::StatsKind::flow;
    send(*conn, flows);
    ofp::StatsRequest ports;
    ports.kind = ofp::StatsKind::port;
    send(*conn, ports);
    ofp::StatsRequest queues;
    queues.kind = ofp::StatsKind::queue;
    send(*conn, queues);
  }
}

void OfDriver::ping_switches() {
  auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count();
  ofp::EchoRequest ping;
  ping.data.resize(8);
  for (int i = 0; i < 8; ++i)
    ping.data[i] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(now) >> (8 * i));
  for (auto& conn : connections_) {
    if (conn->state != Connection::State::ready ||
        !conn->channel.connected())
      continue;
    send(*conn, ping);
  }
}

void OfDriver::bump_counter(const std::string& path, std::uint64_t delta) {
  std::uint64_t value = 0;
  if (auto current = vfs_->read_file(path))
    value = parse_u64(trim(*current)).value_or(0);
  (void)vfs_->write_file(path, std::to_string(value + delta));
}

}  // namespace yanc::driver
