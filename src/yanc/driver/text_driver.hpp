// An experimental-protocol driver — the paper's §4.1 point made concrete:
// "a handful [of switches speak] a separate OpenFlow 1.3 driver, and
// others a driver for an experimental protocol being developed ...
// supporting new protocols only requires a new driver to write new files,
// it does not require modifications to the core controller and interface
// provided to applications."
//
// TEXT/1 is a deliberately trivial line protocol:
//   device -> driver:  HELLO id=<hex> ports=<p1,p2,...>
//                      PACKETIN port=<n> data=<hex>
//                      BYE
//   driver -> device:  FLOW <name> <flowspec-to_string>
//                      UNFLOW <name>
//
// The driver populates the very same /net/switches/<s> tree the OpenFlow
// drivers do.  Applications — router, pusher, shell one-liners — cannot
// tell a TEXT/1 device from an OpenFlow switch, which is the whole point.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "yanc/net/channel.hpp"
#include "yanc/netfs/flowio.hpp"

namespace yanc::driver {

struct TextDriverOptions {
  std::string net_root = "/net";
  std::string switch_name_prefix = "xsw";
};

class TextDriver {
 public:
  TextDriver(std::shared_ptr<vfs::Vfs> vfs, TextDriverOptions options = {});
  ~TextDriver();

  net::Listener& listener() noexcept { return listener_; }

  /// One quantum: accept, parse device lines, apply FS changes.
  std::size_t poll();

  std::size_t connected_devices() const;

 private:
  struct Connection;

  void handle_line(Connection& conn, const std::string& line);
  void on_hello(Connection& conn, const std::string& line);
  std::size_t sync_flows(Connection& conn);
  void deliver_packet_in(Connection& conn, std::uint16_t port,
                         const std::string& hex_data);

  std::shared_ptr<vfs::Vfs> vfs_;
  TextDriverOptions options_;
  net::Listener listener_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_index_ = 1;
  std::uint64_t next_pkt_ = 1;
};

}  // namespace yanc::driver
