// The yanc device driver (§4.1): a thin component that speaks one OpenFlow
// version to a collection of switches and translates between the wire
// protocol and the yanc file system.
//
// Everything flows through the FS:
//   switch connects  -> driver performs the handshake and *creates the
//                       switch directory* (Fig. 3): identity files, ports/,
//                       flows/, counters/, packet_out/
//   app commits flow -> driver's watch on the flow's version file fires ->
//                       FLOW_MOD on the wire (§3.4 commit protocol)
//   app rmdir flow   -> FLOW_MOD delete
//   app writes
//   config.port_down -> PORT_MOD
//   app mkdirs a packet_out/<n> and writes send=1 -> PACKET_OUT
//   switch packet-in -> a pkt_* directory appears in every events/<app>/
//                       buffer (§3.5, concurrent delivery to all apps)
//   switch flow expiry (flow_removed) -> the flow directory disappears
//   stats sync       -> counters/ files refresh from flow/port stats
//
// Multiple drivers — different protocol versions, or an experimental
// protocol — coexist on the same file system; supporting a new protocol
// means writing a new driver, not touching anything above (§4.1).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "yanc/net/channel.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/ofp/codec.hpp"

namespace yanc::driver {

struct DriverOptions {
  ofp::Version version = ofp::Version::of10;
  std::string net_root = "/net";
  /// Prefix for auto-named switch directories ("sw" -> sw1, sw2, ...).
  std::string switch_name_prefix = "sw";
  /// Capacity of the driver's file-system event queue.  When it overflows
  /// (inotify-style), the driver rescans every flows/ directory it owns —
  /// re-arming stale watches and reconciling lost deletions — so small
  /// values exercise that recovery path in tests.
  std::size_t fs_queue_capacity = 1 << 16;

  // Liveness and recovery knobs.  All intervals count poll() calls
  // ("ticks"), not wall time, so behaviour is deterministic under the
  // simulated network.  Defaults are sized well above the settle loops of
  // ordinary tests; fault tests shrink them to exercise recovery quickly.
  /// Idle ticks (no message from the switch) before an echo keepalive.
  std::uint64_t keepalive_interval = 64;
  /// Silent ticks before a switch is declared dead: status=down,
  /// connection closed.  0 disables liveness tracking.
  std::uint64_t keepalive_timeout = 512;
  /// Ticks before an unacknowledged tracked request (flow-commit barrier,
  /// features handshake) is retried.  Doubles per retry.
  std::uint64_t request_timeout = 64;
  /// Retries before the driver gives up on a switch and declares it down.
  std::uint32_t max_retries = 8;
  /// Ticks between flow-table audits (flow-stats reconcile of the FS
  /// against hardware; repairs drift that barriers cannot see, e.g. a
  /// dropped FLOW_MOD whose barrier still got through).  0 disables.
  std::uint64_t audit_interval = 512;

  // Batched event pipeline knobs (docs/PERFORMANCE.md "Batching").
  // Mirrored read-only under /yanc/.stats as driver/of/{batching,
  // max_batch,flush_interval} gauges.
  /// On: per-switch watch shards drain in batches, a commit burst leaves
  /// as one packed FLOW_MOD train capped by a single barrier, and flow
  /// reads go through the sparse (readdir-first) path.  Off: the
  /// per-event pipeline — one read, one FLOW_MOD, one barrier per flow.
  bool batching = true;
  /// Events drained per batch; also the max messages packed per wire
  /// buffer (a longer burst spans several buffers in one vectored send).
  std::size_t max_batch = 256;
  /// Ticks a non-empty egress burst may keep accumulating before it is
  /// flushed.  0 flushes at the end of every poll (lowest latency).
  std::uint64_t flush_interval = 0;
  /// Coalesce adjacent same-path modify events at the shard queues
  /// (effective only while `batching` is on, so off means off).
  bool coalesce_watch_events = true;

  /// Cluster self-fencing valve (docs/ROBUSTNESS.md "Cluster failover"):
  /// when set, state-mutating egress (FLOW_MOD, PACKET_OUT, PORT_MOD) for
  /// a dpid is suppressed unless the gate returns true — a node that lost
  /// its lease stops talking before the switch-side epoch fence even has
  /// to fire.  Suppressed messages count in driver/of/egress_gated_total;
  /// the takeover resync re-pushes anything dropped here.  Handshake and
  /// read-only traffic always passes.
  std::function<bool(std::uint64_t dpid)> egress_gate;
};

class OfDriver {
 public:
  OfDriver(std::shared_ptr<vfs::Vfs> vfs, DriverOptions options = {});
  ~OfDriver();

  OfDriver(const OfDriver&) = delete;
  OfDriver& operator=(const OfDriver&) = delete;

  /// Switches connect here (the simulated "TCP :6633").
  net::Listener& listener() noexcept { return listener_; }

  /// One scheduling quantum: accept connections, handle switch messages,
  /// apply pending file-system changes.  Returns units of work done.
  std::size_t poll();

  /// Requests flow/port statistics from every connected switch; replies
  /// are mirrored into counters/ files when they arrive (next polls).
  void request_stats();

  /// Sends an EchoRequest carrying a send timestamp to every connected
  /// switch; the reply (echoed verbatim) feeds driver/of/echo_rtt_ns.
  void ping_switches();

  const DriverOptions& options() const noexcept { return options_; }
  std::size_t connected_switches() const;

  /// Name of the switch directory for a datapath id, once connected.
  Result<std::string> switch_name(std::uint64_t dpid) const;

  /// Cluster release valve (docs/ROBUSTNESS.md "Cluster failover"): a
  /// node that lost its lease must stop *speaking for* the switch, not
  /// just stop mutating it — a deposed connection left open keeps
  /// writing keepalive counters and stats mirrors into the replicated
  /// record, fighting the successor's tree forever.  Quietly drops every
  /// connection carrying `dpid`: channel closed, traces released, and no
  /// status=down written (the successor owns the directory now).
  void abandon_switch(std::uint64_t dpid);

 private:
  struct Connection;
  struct PendingRequest;
  struct WatchContext;

  std::size_t accept_new();
  std::size_t pump_connection(Connection& conn);
  std::size_t drain_fs_events();
  /// Per-event shard drain (batching off): the pre-batching pipeline.
  std::size_t drain_shard(Connection& conn);
  /// Batched shard drain: pops events max_batch at a time, dedups a
  /// burst's commits to one read+push per flow, queues the FLOW_MODs.
  std::size_t drain_shard_batched(Connection& conn);
  /// Non-flow event dispatch shared by both drain paths (ports, packet
  /// out).  Returns false for flow-commit events, which the two drain
  /// paths handle differently.
  bool handle_aux_event(Connection& conn, const vfs::Event& event,
                        const WatchContext& ctx,
                        std::set<vfs::NodeId>& seen_level_triggered);
  /// flows_dir deletion: FLOW_MOD delete (unless suppressed) + teardown.
  void handle_flow_deleted(Connection& conn, const std::string& name);

  void handle_switch_message(Connection& conn, const ofp::Decoded& decoded);
  void on_features(Connection& conn, const ofp::FeaturesReply& features);
  void on_packet_in(Connection& conn, const ofp::PacketIn& pi,
                    std::uint32_t xid);
  void on_port_status(Connection& conn, const ofp::PortStatus& ps);
  void on_flow_removed(Connection& conn, const ofp::FlowRemoved& fr);
  void on_stats_reply(Connection& conn, const ofp::StatsReply& sr,
                      std::uint32_t xid);

  void create_switch_tree(Connection& conn,
                          const std::vector<ofp::PortDesc>& ports);
  void create_port_dir(Connection& conn, const ofp::PortDesc& port);
  void watch_flow(Connection& conn, const std::string& flow_name);
  void push_flow(Connection& conn, const std::string& flow_name,
                 std::uint32_t retries = 0);
  void send_packet_out_dir(Connection& conn, const std::string& name);
  void bump_counter(const std::string& path, std::uint64_t delta = 1);
  /// Encodes and transmits; returns the xid used, or 0 when the message
  /// could not be encoded or the peer is gone (counted in send_fail_total).
  std::uint32_t send(Connection& conn, const ofp::Message& message);
  /// FLOW_MOD egress valve: queues into the connection's burst when
  /// batching, sends immediately otherwise.  Every FLOW_MOD goes through
  /// here so deletes and adds of one burst keep their relative order.
  void send_flow_mod(Connection& conn, const ofp::FlowMod& fm);
  /// Appends `fm` to the burst, sealing the current buffer at max_batch.
  void queue_flow_mod(Connection& conn, const ofp::FlowMod& fm);
  /// Ships the accumulated burst: seals the open buffer, appends one
  /// barrier covering every commit in the train, vectored-sends the
  /// buffers, records driver/of/batch_size, arms the retry timer.
  void flush_egress(Connection& conn);
  /// counters/flow_mods bump — deferred to the flush when batching (one
  /// FS read-modify-write per burst instead of per flow).
  void note_flow_mod_counter(Connection& conn);

  // --- failure domains (docs/ROBUSTNESS.md) ---------------------------
  /// Writes status=down + connected=0 for the switch, once, unless a
  /// newer connection for the same dpid has taken over the directory.
  void mark_down(Connection& conn);
  /// Sends a tracked request covering the commits of `flows` (empty list
  /// = the features handshake); arms the retry timer.  Batching mode
  /// tracks whole trains through flush_egress instead.
  void track_commit(Connection& conn, std::vector<std::string> flows,
                    std::uint32_t retries);
  /// Keepalives, request timeouts with exponential backoff, audits.
  void service_timers();
  /// Handles one expired tracked request on `conn`: re-pushes every flow
  /// the lost train covered (a lost barrier vouches for none of them),
  /// annotating and re-staging any causal traces the train carried.
  void retry_request(Connection& conn, const PendingRequest& request);
  /// Reconciles the FS flow directories against an audit flow-stats
  /// reply: re-pushes committed flows missing from hardware, deletes
  /// hardware entries no FS flow claims.
  void audit_reconcile(Connection& conn, const ofp::StatsReply& sr);
  /// Full flows/ rescan after a watch-queue overflow: re-arms stale
  /// watches, pushes missed commits, reconciles missed deletions.
  void rescan_flows(Connection& conn);
  /// Cluster-failover repair (runs with the audit, only while this
  /// driver holds the egress gate): a takeover handshake that raced a
  /// partition can leave a second /net/switches directory claiming the
  /// same datapath id.  Committed flows the duplicate carries and ours
  /// lacks are re-committed into our tree — no acknowledged write may be
  /// lost — then the duplicate is removed (its tombstone stops
  /// anti-entropy from resurrecting the split identity).
  void absorb_duplicate_dirs(Connection& conn);

  std::shared_ptr<vfs::Vfs> vfs_;
  DriverOptions options_;
  net::Listener listener_;

  /// Handles into the Vfs's obs registry (see docs/OBSERVABILITY.md).
  struct Metrics {
    obs::Counter* msg_in_total;
    obs::Counter* msg_out_total;
    obs::Counter* packet_in_total;
    obs::Counter* packet_out_total;
    obs::Counter* flow_mod_total;
    obs::Counter* send_fail_total;
    obs::Counter* egress_gated_total;
    obs::Counter* keepalive_timeout_total;
    obs::Counter* retry_total;
    obs::Counter* resync_total;
    obs::Counter* audit_total;
    obs::Counter* audit_repair_total;
    obs::Histogram* echo_rtt_ns;
    /// FLOW_MODs per flushed egress train.
    obs::Histogram* batch_size;
    /// Shard-queue handles shared by every per-switch queue: depth shows
    /// the most recently updated shard, the counters sum across shards.
    obs::Gauge* watch_depth;
    obs::Counter* watch_drops;
    obs::Counter* watch_coalesced;
  } metrics_;

  std::vector<std::unique_ptr<Connection>> connections_;
  /// Audits a duplicate-dir removal has been deferred, per directory
  /// (absorb_duplicate_dirs waits for in-flight commit replication).
  std::map<std::string, std::uint32_t> absorb_deferred_;
  // Watched-node -> what that node means (flow version file, flows dir...).
  std::map<vfs::NodeId, WatchContext> watch_contexts_;
  std::uint64_t next_switch_index_ = 1;
  std::uint64_t next_pkt_seq_ = 1;
  /// Poll counter; every liveness/retry deadline is expressed in it.
  std::uint64_t tick_ = 0;
};

}  // namespace yanc::driver
