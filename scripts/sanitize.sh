#!/usr/bin/env bash
# Builds the tree under a sanitizer and runs tests.
#
# Usage: scripts/sanitize.sh [asan|tsan] [build-dir]
#        scripts/sanitize.sh [build-dir]            (legacy: asan)
#
#   asan  — ASan+UBSan over the full test suite (default dir: build-asan)
#   tsan  — ThreadSanitizer over the concurrency-sensitive suites
#           (vfs_test, netfs_test; default dir: build-tsan).  Extra
#           ctest args after the build dir are passed through, e.g.
#           scripts/sanitize.sh tsan build-tsan -R vfs_test
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
case "${1:-}" in
  asan|tsan) MODE="$1"; shift ;;
esac

if [[ "$MODE" == tsan ]]; then
  BUILD_DIR="${1:-build-tsan}"; shift || true
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DYANC_SANITIZE=thread
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  # halt_on_error turns any reported race into a test failure.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  if [[ $# -gt 0 ]]; then
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  else
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R '(vfs|netfs)_test'
  fi
else
  BUILD_DIR="${1:-build-asan}"; shift || true
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DYANC_SANITIZE=address,undefined
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  # halt_on_error makes UBSan findings fail the run instead of just logging.
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  export ASAN_OPTIONS="detect_leaks=1"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
fi
