#!/usr/bin/env bash
# Builds the whole tree under ASan+UBSan and runs the test suite.
# Usage: scripts/sanitize.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DYANC_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
