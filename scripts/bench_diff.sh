#!/usr/bin/env bash
# Diffs two merged bench result files (scripts/bench.sh output) and fails
# on a performance regression, so recorded BENCH_*.json baselines gate a
# change the same way the unit tests do.
#
# Usage: scripts/bench_diff.sh BASELINE.json CURRENT.json [tolerance-pct]
#
# Compares every (binary, benchmark) pair present in BOTH files:
#
#   - real_time_ns / cpu_time_ns up by more than the tolerance -> regression
#   - throughput counters (*_per_second) down by more than the
#     tolerance -> regression
#
# Everything else is ignored: `iterations` is a measurement artifact, and
# the remaining counters (syscalls, modeled_*, watchers, ...) describe the
# workload's shape, not its speed.  Benchmarks that ran fewer than
# YANC_BENCH_MIN_ITERS (default 3) iterations in either file are skipped
# for the time comparison — a single sample cannot support a percentage
# judgement — and listed so the skip is never silent.
#
#   YANC_BENCH_TOLERANCE   override the tolerance (percent, default 10)
#   YANC_BENCH_MIN_ITERS   minimum iterations for time comparisons
#
# Exit status: 0 when no regression, 1 on regression, 2 on usage error.
set -euo pipefail

if [[ $# -lt 2 || $# -gt 3 ]]; then
  echo "usage: $0 BASELINE.json CURRENT.json [tolerance-pct]" >&2
  exit 2
fi

BASE="$1" CURR="$2"
TOL="${3:-${YANC_BENCH_TOLERANCE:-10}}"
MIN_ITERS="${YANC_BENCH_MIN_ITERS:-3}"
[[ -r "$BASE" ]] || { echo "bench_diff: cannot read $BASE" >&2; exit 2; }
[[ -r "$CURR" ]] || { echo "bench_diff: cannot read $CURR" >&2; exit 2; }

python3 - "$BASE" "$CURR" "$TOL" "$MIN_ITERS" <<'PY'
import json
import sys

base_path, curr_path, tol_pct, min_iters = sys.argv[1:5]
tol = float(tol_pct) / 100.0
min_iters = int(min_iters)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    flat = {}
    for binary, body in doc.get("benches", {}).items():
        for name, row in body.get("benchmarks", {}).items():
            flat[f"{binary}/{name}"] = row
    return flat


base = load(base_path)
curr = load(curr_path)
shared = sorted(base.keys() & curr.keys())
if not shared:
    print("bench_diff: no shared benchmarks between the two files",
          file=sys.stderr)
    sys.exit(2)

regressions, skipped, compared = [], [], 0


def pct(old, new):
    return 100.0 * (new - old) / old


for key in shared:
    b, c = base[key], curr[key]
    weak = (b.get("iterations", 0) < min_iters
            or c.get("iterations", 0) < min_iters)
    for field in ("real_time_ns", "cpu_time_ns"):
        if field not in b or field not in c or b[field] <= 0:
            continue
        if weak:
            skipped.append(key)
            break
        compared += 1
        if c[field] > b[field] * (1.0 + tol):
            regressions.append((key, field, b[field], c[field],
                                pct(b[field], c[field])))
    for counter, bv in b.get("counters", {}).items():
        if not counter.endswith("_per_second"):
            continue
        cv = c.get("counters", {}).get(counter)
        if cv is None or bv <= 0:
            continue
        compared += 1
        if cv < bv * (1.0 - tol):
            regressions.append((key, counter, bv, cv, pct(bv, cv)))

print(f"bench_diff: {len(shared)} shared benchmarks, "
      f"{compared} metrics compared at ±{tol_pct}% "
      f"({base_path} -> {curr_path})")
if skipped:
    names = sorted(set(skipped))
    print(f"bench_diff: skipped time check for {len(names)} "
          f"low-iteration benchmarks (< {min_iters} iters): "
          + ", ".join(names))
if regressions:
    print(f"bench_diff: {len(regressions)} regression(s) beyond {tol_pct}%:")
    for key, field, old, new, delta in regressions:
        print(f"  {key} [{field}]: {old:.1f} -> {new:.1f} ({delta:+.1f}%)")
    sys.exit(1)
print("bench_diff: OK — no regression beyond tolerance")
PY
