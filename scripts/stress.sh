#!/usr/bin/env bash
# Fault-matrix stress run: builds the tree under ASan+UBSan with the
# stress tier enabled and sweeps the deterministic recovery scenarios
# across ten seed bases (100 RNG seeds total), plus the batched-pipeline
# property sweep (ten bases x five seeds = 50 random event histories
# through the coalescing watch consumer).  A failing run prints the
# YANC_FAULT_SEED / YANC_PROP_SEED that reproduces it — replay with:
#   YANC_FAULT_SEED=<seed> build-stress/tests/driver_test \
#       --gtest_filter='DriverFaultMatrix.*'
#   YANC_PROP_SEED=<seed> build-stress/tests/batch_prop_test \
#       --gtest_filter='BatchPipelineProperty.*'
#
# The `cluster` preset runs only the cluster chaos sweep (20 seeds of
# randomized node-kill / partition / lease-delay schedules against the
# 3-node active cluster; docs/ROBUSTNESS.md "Cluster failover"):
#   scripts/stress.sh cluster
# Replay one seed with:
#   YANC_FAULT_SEED=<seed> build-stress/tests/cluster_test \
#       --gtest_filter='ClusterChaos.*'
# Usage: scripts/stress.sh [cluster] [build-dir]   (default: build-stress)
set -euo pipefail

cd "$(dirname "$0")/.."
PRESET="all"
if [[ "${1:-}" == "cluster" ]]; then
  PRESET="cluster"
  shift
fi
BUILD_DIR="${1:-build-stress}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DYANC_SANITIZE=address,undefined \
  -DYANC_STRESS=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"
if [[ "$PRESET" == "cluster" ]]; then
  ctest --test-dir "$BUILD_DIR" -R '^stress_cluster_seed' \
    --output-on-failure -j "$(nproc)"
else
  ctest --test-dir "$BUILD_DIR" -L stress --output-on-failure -j "$(nproc)"
fi
