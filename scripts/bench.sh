#!/usr/bin/env bash
# Runs every bench_* binary in --json mode and merges the results into one
# BENCH_<YYYYMMDD>.json at the repo root, so runs can be diffed over time.
#
# Usage: scripts/bench.sh [build-dir]        (default: build-bench)
#
# The default build dir is configured Release with -DYANC_DBG_LOCKS=OFF:
# numbers comparable against the BENCH_*.json baselines must not include
# lock-order validation overhead (docs/CORRECTNESS.md).  Pass an explicit
# build dir to bench a different configuration knowingly.
#
#   BENCH_ARGS     extra flags for every binary, e.g.
#                  BENCH_ARGS='--benchmark_filter=Threaded' scripts/bench.sh
#   BENCH_OUT      override the output path
#
# Each binary prints exactly one JSON object ({"benchmarks":{...}}, see
# bench/bench_json.hpp); this script wraps them per-binary under a top-level
# "benches" key with a date stamp.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
OUT="${BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"

if [[ -z "${1:-}" ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release -DYANC_DBG_LOCKS=OFF >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" >/dev/null
fi

if ! compgen -G "$BUILD_DIR/bench/bench_*" > /dev/null; then
  echo "no bench_* binaries under $BUILD_DIR/bench — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release -DYANC_DBG_LOCKS=OFF && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

{
  printf '{"date":"%s","nproc":%s,"benches":{' "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$(nproc)"
  first=1
  for bin in "$BUILD_DIR"/bench/bench_*; do
    [[ -x "$bin" && ! -d "$bin" ]] || continue
    name="$(basename "$bin")"
    echo "running $name..." >&2
    # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
    json="$("$bin" --json ${BENCH_ARGS:-} | tail -n 1)"
    [[ "$json" == \{* ]] || { echo "  $name produced no JSON, skipping" >&2; continue; }
    [[ $first -eq 1 ]] || printf ','
    first=0
    printf '"%s":%s' "$name" "$json"
  done
  printf '}}\n'
} > "$OUT"

echo "wrote $OUT" >&2
