#!/usr/bin/env bash
# Static gates: yanc-lint always; clang-tidy only where available.
#
# Usage: scripts/lint.sh [build-dir]     (default: build)
#
# yanc-lint is hermetic (built from tools/yanc-lint, stdlib only) and is
# the authoritative gate — it also runs under ctest.  clang-tidy is an
# optional extra layer: the container does not ship it, so its absence is
# reported and skipped, never failed on.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/tools/yanc-lint/yanc_lint" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target yanc_lint -j "$(nproc)"
fi

echo "== yanc-lint self-test =="
"$BUILD_DIR/tools/yanc-lint/yanc_lint" --self-test tools/yanc-lint/fixtures

echo "== yanc-lint =="
"$BUILD_DIR/tools/yanc-lint/yanc_lint" --root "$PWD" src tests bench
echo "yanc-lint: clean"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists, so the
  # database is always there once the tree has configured.
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null
  fi
  # Propagate failures: a clang-tidy diagnostic fails the gate, exactly
  # like a yanc-lint finding (xargs exits non-zero when any batch does).
  if ! find src/yanc -name '*.cpp' -print0 |
      xargs -0 -P "$(nproc)" -n 8 clang-tidy -p "$BUILD_DIR" --quiet; then
    echo "clang-tidy: findings above are fatal"
    exit 1
  fi
  echo "clang-tidy: clean"
else
  echo "clang-tidy: not installed, skipped (yanc-lint is the required gate)"
fi
