#!/usr/bin/env bash
# One-shot correctness gate: everything a change must pass before merge.
#
# Usage: scripts/check.sh [--fast]
#
#   default — configure + build (lockdep ON), full ctest tier (which
#             includes the yanc-lint gate and its self-test), lint.sh,
#             a lockdep-OFF release build proving the wrappers compile
#             away, then ASan/UBSan over the full suite and TSan over the
#             concurrency suites via scripts/sanitize.sh.
#   --fast  — stop after the lint gate (no sanitizer rebuilds).
set -euo pipefail

cd "$(dirname "$0")/.."
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "=== build (YANC_DBG_LOCKS=ON) ==="
cmake -B build -S . -DYANC_DBG_LOCKS=ON
cmake --build build -j "$(nproc)"

echo "=== ctest (tier 1 + lint gate) ==="
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== lint ==="
scripts/lint.sh build

echo "=== release build (YANC_DBG_LOCKS=OFF: wrappers must compile away) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release -DYANC_DBG_LOCKS=OFF
cmake --build build-release -j "$(nproc)"
ctest --test-dir build-release --output-on-failure -j "$(nproc)" -R dbg_test

if [[ "$FAST" == 1 ]]; then
  echo "check.sh --fast: OK (sanitizers skipped)"
  exit 0
fi

echo "=== asan+ubsan ==="
scripts/sanitize.sh asan

echo "=== tsan (concurrency suites + lockdep) ==="
scripts/sanitize.sh tsan build-tsan -R '(vfs|netfs|dbg)_test'

echo "check.sh: all gates passed"
