#!/usr/bin/env bash
# One-shot correctness gate: everything a change must pass before merge.
#
# Usage: scripts/check.sh [--fast]
#
#   default — configure + build (lockdep ON), full ctest tier (which
#             includes the yanc-lint and yanc-analyze gates and their
#             self-tests), lint.sh, yanc-analyze with the runtime
#             lock-coverage sweep (scripts/analyze.sh --coverage), a
#             lockdep-OFF release build proving the wrappers compile
#             away, then ASan/UBSan over the full suite and TSan over the
#             concurrency suites via scripts/sanitize.sh.
#   --fast  — static-only yanc-analyze, stop before the coverage sweep
#             and sanitizer rebuilds.
set -euo pipefail

cd "$(dirname "$0")/.."
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "=== build (YANC_DBG_LOCKS=ON) ==="
cmake -B build -S . -DYANC_DBG_LOCKS=ON
cmake --build build -j "$(nproc)"

echo "=== ctest (tier 1 + lint gate) ==="
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== lint ==="
scripts/lint.sh build

# Static lock-order gate: --fast stops at the static pass; the full run
# also sweeps tier 1 with edge dumping on and prints the static-vs-runtime
# lock-coverage report.
echo "=== yanc-analyze ==="
if [[ "$FAST" == 1 ]]; then
  scripts/analyze.sh build
else
  scripts/analyze.sh --coverage build
fi

# Perf gate: when two recorded baselines of the same variant exist
# (BENCH_<date>.json, or BENCH_<date>_<variant>.json), diff the two
# newest.  Cross-day baselines carry ambient machine drift well beyond
# the tolerance (EXPERIMENTS.md EXP-10 saw +31…+63% day-to-day swings on
# untouched code), so by default a regression here is REPORTED but does
# not fail the gate; set YANC_BENCH_STRICT=1 to make it fatal — correct
# when both files came from the same session (scripts/bench_diff.sh on
# an interleaved A/B pair is always strict when invoked directly).
echo "=== bench diff (recorded baselines) ==="
for variant in $(ls BENCH_*.json 2>/dev/null \
                   | sed -E 's/^BENCH_[0-9]+(_)?//; s/\.json$//; s/^$/@default/' \
                   | sort -u); do
  if [[ "$variant" != "@default" ]]; then
    files=(BENCH_*_"$variant".json)
  else
    variant=""
    files=($(ls BENCH_*.json 2>/dev/null | grep -E '^BENCH_[0-9]+\.json$' || true))
  fi
  if (( ${#files[@]} >= 2 )); then
    prev="${files[-2]}" latest="${files[-1]}"
    echo "--- ${variant:-default}: $prev -> $latest"
    if ! scripts/bench_diff.sh "$prev" "$latest"; then
      if [[ "${YANC_BENCH_STRICT:-0}" == 1 ]]; then
        echo "bench diff: regression beyond tolerance (YANC_BENCH_STRICT=1)"
        exit 1
      fi
      echo "bench diff: regression reported (advisory — cross-day baselines;"
      echo "            set YANC_BENCH_STRICT=1 to enforce)"
    fi
  else
    echo "--- ${variant:-default}: single baseline, nothing to diff"
  fi
done

echo "=== release build (YANC_DBG_LOCKS=OFF: wrappers must compile away) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release -DYANC_DBG_LOCKS=OFF
cmake --build build-release -j "$(nproc)"
# dbg_test proves the lock wrappers still behave; smoke_cluster_failover
# proves a node-kill failover (elect -> re-home -> resync) end to end in
# the release configuration too.
ctest --test-dir build-release --output-on-failure -j "$(nproc)" \
  -R '(dbg_test|smoke_cluster_failover)'

if [[ "$FAST" == 1 ]]; then
  echo "check.sh --fast: OK (sanitizers skipped)"
  exit 0
fi

echo "=== asan+ubsan ==="
scripts/sanitize.sh asan

echo "=== tsan (concurrency suites + lockdep) ==="
scripts/sanitize.sh tsan build-tsan -R '(vfs|netfs|dbg)_test'

echo "check.sh: all gates passed"
