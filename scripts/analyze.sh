#!/usr/bin/env bash
# Whole-program static lock-order verification (tools/yanc-analyze).
#
# Usage: scripts/analyze.sh [--coverage] [--json] [build-dir]
#
#   default     — fixture self-test, then the static pass over src/yanc:
#                 rank cycles, same-rank nesting, blocking calls under
#                 held locks, unresolvable guards, dead ranks, raw
#                 mutexes, and docs/CORRECTNESS.md rank-table drift.
#   --coverage  — additionally run tier 1 with YANC_LOCK_EDGES_OUT set so
#                 every test process dumps its observed runtime edge
#                 graph at exit, merge the per-process dumps, and print
#                 the static-vs-runtime lock-coverage report (which
#                 statically reachable edges no test exercised, and which
#                 runtime edges static resolution missed).
#   --json      — machine-readable findings/edges/coverage on stdout.
set -euo pipefail

cd "$(dirname "$0")/.."
COVERAGE=0
JSON=()
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --coverage) COVERAGE=1 ;;
    --json) JSON+=(--json) ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

ANALYZE="$BUILD_DIR/tools/yanc-analyze/yanc_analyze"
if [[ ! -x "$ANALYZE" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target yanc_analyze -j "$(nproc)"
fi

echo "== yanc-analyze self-test =="
"$ANALYZE" --self-test tools/yanc-analyze/fixtures

if [[ "$COVERAGE" == 0 ]]; then
  echo "== yanc-analyze (static) =="
  "$ANALYZE" --root "$PWD" --doc docs/CORRECTNESS.md ${JSON[@]+"${JSON[@]}"} \
    src/yanc
  echo "yanc-analyze: clean"
  exit 0
fi

echo "== yanc-analyze (static + runtime coverage) =="
# The test tier must exist to observe runtime edges.
if [[ ! -f "$BUILD_DIR/CTestTestfile.cmake" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)"
fi
EDGE_DIR="$(mktemp -d)"
trap 'rm -rf "$EDGE_DIR"' EXIT
# One dump file per test process ("edges.<pid>"); processes that abort
# (death tests) simply contribute nothing.
YANC_LOCK_EDGES_OUT="$EDGE_DIR/edges" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" >/dev/null
cat "$EDGE_DIR"/edges.* >"$EDGE_DIR/merged" 2>/dev/null || true
"$ANALYZE" --root "$PWD" --doc docs/CORRECTNESS.md \
  --runtime-edges "$EDGE_DIR/merged" ${JSON[@]+"${JSON[@]}"} src/yanc
