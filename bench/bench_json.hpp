// Shared entry point for the bench_* binaries adding a --json mode.
//
// YANC_BENCH_MAIN() behaves exactly like BENCHMARK_MAIN() unless --json is
// passed, in which case human console output is replaced by ONE JSON object
// on stdout with stable keys, so CI and scripts can diff runs:
//
//   {"benchmarks":{"BM_WriteFile":{"iterations":1234,
//     "real_time_ns":512.3,"cpu_time_ns":511.0,
//     "counters":{"syscalls":3.0}}}}
//
// Times are per-iteration nanoseconds regardless of each benchmark's
// display time unit; counters appear post-adjustment (rates already
// divided by time, averages by iterations), matching the console columns.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace yanc::bench {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

class JsonReporter : public ::benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // With --benchmark_repetitions the per-repetition runs share a name;
      // keep the first plus the uniquely-named aggregates (mean/median/...).
      if (run.run_type == Run::RT_Iteration && run.repetition_index > 0)
        continue;
      double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "{\"iterations\":%lld,\"real_time_ns\":%.3f,"
                    "\"cpu_time_ns\":%.3f,\"counters\":{",
                    static_cast<long long>(run.iterations),
                    run.real_accumulated_time / iters * 1e9,
                    run.cpu_accumulated_time / iters * 1e9);
      std::string entry = buf;
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        std::snprintf(buf, sizeof buf, "%s\"%s\":%.3f", first ? "" : ",",
                      json_escape(name).c_str(),
                      static_cast<double>(counter.value));
        entry += buf;
        first = false;
      }
      entry += "}}";
      if (!entries_.empty()) entries_ += ',';
      entries_ += '"';
      entries_ += json_escape(run.benchmark_name());
      entries_ += "\":";
      entries_ += entry;
    }
  }

  void Finalize() override {
    std::printf("{\"benchmarks\":{%s}}\n", entries_.c_str());
    std::fflush(stdout);
  }

 private:
  std::string entries_;
};

inline int run_main(int argc, char** argv) {
  bool json = false;
  std::vector<char*> args;
  // --smoke: run every benchmark for a token interval — a ctest-able
  // "does each binary still execute end to end" gate, not a measurement.
  static char smoke_min_time[] = "--benchmark_min_time=0.001";
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      json = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--smoke") {
      args.push_back(smoke_min_time);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&filtered_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  if (json) {
    JsonReporter reporter;
    ::benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    ::benchmark::RunSpecifiedBenchmarks();
  }
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace yanc::bench

#define YANC_BENCH_MAIN()          \
  int main(int argc, char** argv) { \
    return yanc::bench::run_main(argc, argv); \
  }
