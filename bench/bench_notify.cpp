// EXP-5 (§5.2): file-system monitoring.  "Use of the *notify systems
// comes free, requiring no additional lines of code to the yanc file
// system" — free in code, but what does delivery cost at runtime?
//
// Measures: write latency as watcher count grows (fan-out cost is paid by
// the writer), event consumption throughput, and watch registration.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/netfs/yancfs.hpp"
#include "yanc/obs/metrics.hpp"

using namespace yanc;

namespace {

// Writer-side cost with W watchers on the same file.
void BM_WriteWithWatchers(benchmark::State& state) {
  const int watchers = static_cast<int>(state.range(0));
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  (void)v->mkdir("/net/switches/sw1/flows/f");

  std::vector<vfs::WatchQueuePtr> queues;
  std::vector<std::shared_ptr<vfs::WatchHandle>> handles;
  for (int w = 0; w < watchers; ++w) {
    auto q = std::make_shared<vfs::WatchQueue>(1 << 20);
    auto h = v->watch("/net/switches/sw1/flows/f/version",
                      vfs::event::modified, q);
    queues.push_back(q);
    handles.push_back(*h);
  }

  std::uint64_t version = 1;
  for (auto _ : state) {
    (void)v->write_file("/net/switches/sw1/flows/f/version",
                        std::to_string(version++));
    // Drain periodically so queues never overflow (consumption is cheap
    // and measured separately below).
    if ((version & 0x3ff) == 0)
      for (auto& q : queues) q->drain();
  }
  state.counters["watchers"] =
      benchmark::Counter(static_cast<double>(watchers));
}
BENCHMARK(BM_WriteWithWatchers)->Arg(0)->Arg(1)->Arg(10)->Arg(100);

// Consumer-side: drain throughput.
void BM_EventConsumption(benchmark::State& state) {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  auto q = std::make_shared<vfs::WatchQueue>(1 << 20);
  auto h = v->watch("/net/switches/sw1/id", vfs::event::modified, q);

  std::uint64_t consumed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 1024; ++i)
      (void)v->write_file("/net/switches/sw1/id", "0x1");
    state.ResumeTiming();
    while (auto e = q->try_pop()) {
      benchmark::DoNotOptimize(e->mask);
      ++consumed;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(consumed));
}
BENCHMARK(BM_EventConsumption);

// Registration cost: watch + unwatch a node.
void BM_WatchRegistration(benchmark::State& state) {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  auto q = std::make_shared<vfs::WatchQueue>();
  for (auto _ : state) {
    auto h = v->watch("/net/switches/sw1/flows", vfs::event::created, q);
    benchmark::DoNotOptimize(h);
    // handle destruction unregisters
  }
}
BENCHMARK(BM_WatchRegistration);

// The directory-watch pattern drivers use: one watch on flows/, events
// name the created children.
void BM_DirectoryWatchCreateDelete(benchmark::State& state) {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  auto q = std::make_shared<vfs::WatchQueue>(1 << 20);
  auto h = v->watch("/net/switches/sw1/flows",
                    vfs::event::created | vfs::event::deleted, q);
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::string dir = "/net/switches/sw1/flows/f" + std::to_string(i++);
    (void)v->mkdir(dir);
    (void)v->rmdir(dir);
    q->drain();
  }
}
BENCHMARK(BM_DirectoryWatchCreateDelete);

// Overflow behaviour: pushing into a full queue must stay O(1).
void BM_OverflowedQueuePush(benchmark::State& state) {
  vfs::WatchQueue q(16);
  for (int i = 0; i < 64; ++i)
    q.push({vfs::event::created, 1, "x", 0});  // overflowed long ago
  for (auto _ : state) q.push({vfs::event::created, 1, "x", 0});
  state.counters["overflowed"] = benchmark::Counter(q.overflowed() ? 1 : 0);
}
BENCHMARK(BM_OverflowedQueuePush);

// Batched fan-out (ISSUE 5): one writer bursts version rewrites, M
// watchers consume.  Drain mode sweeps the pipeline generations:
//   mode 0 — per-event try_pop (the seed consumer loop),
//   mode 1 — try_pop_batch, one lock round-trip per batch,
//   mode 2 — batch drain + coalescing, duplicate modifies merge at push.
// The writer side is identical in all modes (events are pushed per
// write regardless of how they will be drained), so the write burst runs
// outside the timer and the measurement isolates delivery: lock
// round-trips and event copies per consumed write.  `coalesced_total`
// and `mean_batch` land in --json so runs can be diffed; items
// processed = writes, so throughput compares directly across modes.
void BM_FanoutBatchDrain(benchmark::State& state) {
  const int watchers = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  (void)v->mkdir("/net/switches/sw1/flows/f");

  obs::Registry registry;
  auto* coalesced = registry.counter("coalesced_total");
  std::vector<vfs::WatchQueuePtr> queues;
  std::vector<std::shared_ptr<vfs::WatchHandle>> handles;
  for (int w = 0; w < watchers; ++w) {
    auto q = std::make_shared<vfs::WatchQueue>(1 << 20);
    q->set_coalescing(mode == 2);
    q->bind_metrics(nullptr, nullptr, coalesced);
    auto h = v->watch("/net/switches/sw1/flows/f/version",
                      vfs::event::modified, q);
    queues.push_back(q);
    handles.push_back(*h);
  }

  constexpr int kBurst = 64;
  std::vector<vfs::Event> batch;
  std::uint64_t version = 1;
  std::uint64_t delivered = 0;
  std::uint64_t drains = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < kBurst; ++i)
      (void)v->write_file("/net/switches/sw1/flows/f/version",
                          std::to_string(version++));
    state.ResumeTiming();
    for (auto& q : queues) {
      if (mode == 0) {
        while (auto e = q->try_pop()) {
          benchmark::DoNotOptimize(e->mask);
          ++delivered;
          ++drains;
        }
      } else {
        while (q->try_pop_batch(batch, 256) > 0) {
          delivered += batch.size();
          ++drains;
          batch.clear();
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBurst);
  state.counters["watchers"] =
      benchmark::Counter(static_cast<double>(watchers));
  state.counters["coalesced_total"] =
      benchmark::Counter(static_cast<double>(coalesced->value()));
  state.counters["mean_batch"] = benchmark::Counter(
      drains == 0 ? 0.0
                  : static_cast<double>(delivered) /
                        static_cast<double>(drains));
}
BENCHMARK(BM_FanoutBatchDrain)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({32, 2});

// Writer-side fan-out under concurrency: each thread rewrites its own
// watched file.  Emission happens after the FS lock drops (serialized only
// by the per-fs emit order lock), so watched writes to distinct files no
// longer serialize consumer-queue pushes under the namespace lock.
void BM_WatchedWritesThreaded(benchmark::State& state) {
  static std::shared_ptr<vfs::Vfs> v;
  static std::vector<vfs::WatchQueuePtr> queues;
  static std::vector<std::shared_ptr<vfs::WatchHandle>> handles;
  if (state.thread_index() == 0) {
    v = std::make_shared<vfs::Vfs>();
    (void)v->mkdir("/data");
    for (int t = 0; t < 16; ++t) {
      std::string path = "/data/f" + std::to_string(t);
      (void)v->write_file(path, "0");
      auto q = std::make_shared<vfs::WatchQueue>(1 << 20);
      auto h = v->watch(path, vfs::event::modified, q);
      queues.push_back(q);
      handles.push_back(*h);
    }
  }
  std::string mine = "/data/f" + std::to_string(state.thread_index());
  std::uint64_t version = 1;
  for (auto _ : state) {
    (void)v->write_file(mine, std::to_string(version++));
    if ((version & 0x3ff) == 0)
      queues[static_cast<std::size_t>(state.thread_index())]->drain();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    handles.clear();
    queues.clear();
    v.reset();
  }
}
BENCHMARK(BM_WatchedWritesThreaded)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

}  // namespace

YANC_BENCH_MAIN();
