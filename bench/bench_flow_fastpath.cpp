// EXP-2 (§8.1): file-system path vs the libyanc fastpath for creating
// flow entries.
//
// "To mitigate the performance overhead of working with the file system,
// we are implementing libyanc ... a fastpath for e.g. creating flow
// entries atomically and without any context switchings."
//
// Three ways to create one committed flow entry:
//   fs_path      — mkdir + per-field writes + version commit (§3.4): what
//                  a shell script or naive app does.  ~12-16 ops.
//   fs_handles   — the typed-handle API (write_flow): same file ops,
//                  library-managed.
//   libyanc      — FlowChannel submit + driver-side drain to FLOW_MOD
//                  bytes: zero file ops on the application's path.
//   libyanc_mirrored — same, plus the consumer mirroring the flow into
//                  the FS off the critical path (what production runs).
//
// Expected shape: libyanc beats the FS paths by a large factor, and the
// `syscalls` counter shows why (EXP-2's modelled column).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/fast/consumer.hpp"
#include "yanc/fast/syscall_model.hpp"
#include "yanc/netfs/handles.hpp"
#include "yanc/netfs/yancfs.hpp"

using namespace yanc;

namespace {

flow::FlowSpec sample_flow(int i) {
  flow::FlowSpec spec;
  spec.match.dl_type = 0x0800;
  spec.match.nw_proto = 6;
  spec.match.nw_src = Cidr(Ipv4Address(0x0a000000u + (std::uint32_t)i), 32);
  spec.match.tp_dst = 22;
  spec.actions = {flow::Action::output(2)};
  spec.priority = 100;
  return spec;
}

std::shared_ptr<vfs::Vfs> fresh_fs() {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  return v;
}

void report(benchmark::State& state, std::uint64_t syscalls) {
  fast::SyscallCostModel model;
  state.counters["syscalls_per_flow"] = benchmark::Counter(
      static_cast<double>(syscalls) /
      static_cast<double>(state.iterations()));
  state.counters["modeled_ns_flow"] = benchmark::Counter(
      static_cast<double>(model.overhead_ns(syscalls)) /
      static_cast<double>(state.iterations()));
}

// The "shell script" path: one file op per field (what §3.4 describes).
void BM_FsPath_PerFieldWrites(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  int i = 0;
  for (auto _ : state) {
    std::string dir = "/net/switches/sw1/flows/f" + std::to_string(i++);
    (void)v->mkdir(dir);
    (void)v->write_file(dir + "/match.dl_type", "0x0800");
    (void)v->write_file(dir + "/match.nw_proto", "6");
    (void)v->write_file(dir + "/match.nw_src", "10.0.0.1");
    (void)v->write_file(dir + "/match.tp_dst", "22");
    (void)v->write_file(dir + "/action.out", "2");
    (void)v->write_file(dir + "/priority", "100");
    (void)v->write_file(dir + "/version", "1");
  }
  report(state, v->counters().total.load());
}
BENCHMARK(BM_FsPath_PerFieldWrites);

// The typed-handle API over the same file operations.
void BM_FsPath_WriteFlowHelper(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  int i = 0;
  for (auto _ : state) {
    (void)netfs::write_flow(
        *v, "/net/switches/sw1/flows/f" + std::to_string(i), sample_flow(i));
    ++i;
  }
  report(state, v->counters().total.load());
}
BENCHMARK(BM_FsPath_WriteFlowHelper);

// libyanc: submit + drain to wire bytes, no file system on the path.
void BM_Libyanc_Fastpath(benchmark::State& state) {
  fast::FlowChannel channel(1 << 14);
  std::uint64_t wire_bytes = 0;
  int i = 0;
  for (auto _ : state) {
    (void)channel.submit(
        fast::FlowBatch{"sw1", {{"f" + std::to_string(i), sample_flow(i)}}});
    auto stats = fast::drain_flow_channel(
        channel, ofp::Version::of10,
        [&](const std::string&, std::vector<std::uint8_t> bytes) {
          wire_bytes += bytes.size();
        });
    benchmark::DoNotOptimize(stats);
    ++i;
  }
  report(state, 0);  // zero boundary crossings on the app path
  state.counters["wire_bytes_flow"] = benchmark::Counter(
      static_cast<double>(wire_bytes) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Libyanc_Fastpath);

// libyanc batching: N flows published with ONE atomic ring push.
void BM_Libyanc_Batched(benchmark::State& state) {
  fast::FlowChannel channel(1 << 14);
  const int batch_size = static_cast<int>(state.range(0));
  int i = 0;
  for (auto _ : state) {
    fast::FlowBatch batch;
    batch.switch_name = "sw1";
    for (int f = 0; f < batch_size; ++f) {
      batch.entries.emplace_back("f" + std::to_string(i), sample_flow(i));
      ++i;
    }
    (void)channel.submit(std::move(batch));
    auto stats = fast::drain_flow_channel(
        channel, ofp::Version::of10,
        [](const std::string&, std::vector<std::uint8_t>) {});
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_Libyanc_Batched)->Arg(1)->Arg(16)->Arg(256);

// Fastpath with the FS mirror enabled: the mirror pays the file ops, but
// off the application's critical path (here it is on the same thread, so
// this is the upper bound of total work).
void BM_Libyanc_WithMirror(benchmark::State& state) {
  auto v = fresh_fs();
  fast::FlowChannel channel(1 << 14);
  v->reset_counters();
  int i = 0;
  for (auto _ : state) {
    (void)channel.submit(
        fast::FlowBatch{"sw1", {{"f" + std::to_string(i), sample_flow(i)}}});
    auto stats = fast::drain_flow_channel(
        channel, ofp::Version::of10,
        [](const std::string&, std::vector<std::uint8_t>) {}, v.get());
    benchmark::DoNotOptimize(stats);
    ++i;
  }
  report(state, v->counters().total.load());
}
BENCHMARK(BM_Libyanc_WithMirror);

}  // namespace

YANC_BENCH_MAIN();
