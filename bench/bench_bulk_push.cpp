// EXP-3 (§8.1): "Complex operations such as writing flow entries to
// thousands of nodes will result in tens of thousands of context switches
// and thus a small performance impact."
//
// Sweep: push 10 flows to each of N switches (N = 10..2000) through the
// file system, and the same workload through libyanc.  The `syscalls`
// counter reproduces the paper's arithmetic directly: at ~14 file ops per
// flow, 1000 switches x 10 flows ≈ 140k boundary crossings — "tens of
// thousands" begins around a hundred switches.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/driver/of_driver.hpp"
#include "yanc/fast/consumer.hpp"
#include "yanc/fast/syscall_model.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/sw/switch.hpp"

using namespace yanc;

namespace {

flow::FlowSpec sample_flow(int i) {
  flow::FlowSpec spec;
  spec.match.dl_type = 0x0800;
  spec.match.tp_dst = static_cast<std::uint16_t>(1000 + i);
  spec.actions = {flow::Action::output(2)};
  return spec;
}

constexpr int kFlowsPerSwitch = 10;

void BM_BulkPush_FsPath(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = std::make_shared<vfs::Vfs>();
    (void)netfs::mount_yanc_fs(*v);
    for (int s = 0; s < switches; ++s)
      (void)v->mkdir("/net/switches/sw" + std::to_string(s));
    v->reset_counters();
    state.ResumeTiming();

    for (int s = 0; s < switches; ++s) {
      std::string base = "/net/switches/sw" + std::to_string(s) + "/flows/";
      for (int f = 0; f < kFlowsPerSwitch; ++f)
        (void)netfs::write_flow(*v, base + "f" + std::to_string(f),
                                sample_flow(f));
    }

    state.PauseTiming();
    fast::SyscallCostModel model;
    std::uint64_t syscalls = v->counters().total.load();
    state.counters["syscalls"] = benchmark::Counter(
        static_cast<double>(syscalls));
    state.counters["modeled_ms"] = benchmark::Counter(
        static_cast<double>(model.overhead_ns(syscalls)) / 1e6);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * switches * kFlowsPerSwitch);
}
BENCHMARK(BM_BulkPush_FsPath)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_BulkPush_Libyanc(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fast::FlowChannel channel(1 << 16);
    std::uint64_t delivered = 0;
    for (int s = 0; s < switches; ++s) {
      fast::FlowBatch batch;
      batch.switch_name = "sw" + std::to_string(s);
      for (int f = 0; f < kFlowsPerSwitch; ++f)
        batch.entries.emplace_back("f" + std::to_string(f), sample_flow(f));
      (void)channel.submit(std::move(batch));
    }
    auto stats = fast::drain_flow_channel(
        channel, ofp::Version::of10,
        [&](const std::string&, std::vector<std::uint8_t>) { ++delivered; });
    benchmark::DoNotOptimize(stats);
    state.counters["syscalls"] = benchmark::Counter(0);
    state.counters["flow_mods"] =
        benchmark::Counter(static_cast<double>(delivered));
  }
  state.SetItemsProcessed(state.iterations() * switches * kFlowsPerSwitch);
}
BENCHMARK(BM_BulkPush_Libyanc)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

// End to end through the real pipeline (ISSUE 5): YancFs writes -> watch
// shard -> FLOW_MOD egress -> software switch, batching off (Arg 0) vs on
// (Arg 1).  Each iteration commits a burst of flows, settles to hardware,
// then removes them and settles again, so the table stays bounded and the
// timing covers both directions of the commit protocol.  Producing the
// burst (write_flow / remove_all) costs the same in both modes, so it
// runs outside the timer; what is measured is the driver pipeline the
// burst then flows through.  The batched pipeline's edge is structural —
// one sparse flow read, one packed wire train, one barrier, and one
// counter RMW per burst instead of per flow — and `mean_batch` (the
// driver/of/batch_size mean) shows the train size actually achieved.
void BM_BulkPush_DriverPipeline(benchmark::State& state) {
  const bool batching = state.range(0) != 0;
  constexpr int kBurst = 64;
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  net::Scheduler scheduler;
  net::Network network(scheduler);
  driver::DriverOptions opts;
  opts.batching = batching;
  // The periodic flow-table audit fires on tick counts, not on work, so
  // at benchmark iteration rates it lands mid-commit and re-pushes whole
  // bursts — seed-dependent noise, not pipeline cost.  Off for the
  // measurement; driver_test covers audits.
  opts.audit_interval = 0;
  driver::OfDriver drv(v, opts);
  sw::SwitchOptions sopts;
  sopts.datapath_id = 0x1;
  sw::Switch s("dp1", sopts, network);
  s.add_port(1, MacAddress::from_u64(0x020000000001ull), "eth1");
  s.connect(drv.listener().connect());
  auto settle = [&] {
    for (int round = 0; round < 1000; ++round) {
      std::size_t work = drv.poll();
      work += s.pump();
      work += scheduler.run_until_idle();
      if (work == 0) break;
    }
  };
  settle();

  // Names are reused across iterations so steady state stays steady: no
  // unbounded dcache / watch-registry growth skewing late iterations.
  const std::string base = "/net/switches/sw1/flows/f";
  for (auto _ : state) {
    state.PauseTiming();
    for (int f = 0; f < kBurst; ++f)
      (void)netfs::write_flow(*v, base + std::to_string(f), sample_flow(f));
    state.ResumeTiming();
    settle();  // commit: watch shard -> flow read -> wire -> barrier
    state.PauseTiming();
    for (int f = 0; f < kBurst; ++f)
      (void)v->remove_all(base + std::to_string(f));
    state.ResumeTiming();
    settle();  // delete: watch shard -> remove_strict train
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBurst);
  state.counters["mean_batch"] = benchmark::Counter(static_cast<double>(
      v->metrics()->histogram("driver/of/batch_size")->mean()));
  state.counters["coalesced_total"] = benchmark::Counter(
      static_cast<double>(
          v->metrics()->counter("watch/coalesced_total")->value()));
}
BENCHMARK(BM_BulkPush_DriverPipeline)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

YANC_BENCH_MAIN();
