// EXP-3 (§8.1): "Complex operations such as writing flow entries to
// thousands of nodes will result in tens of thousands of context switches
// and thus a small performance impact."
//
// Sweep: push 10 flows to each of N switches (N = 10..2000) through the
// file system, and the same workload through libyanc.  The `syscalls`
// counter reproduces the paper's arithmetic directly: at ~14 file ops per
// flow, 1000 switches x 10 flows ≈ 140k boundary crossings — "tens of
// thousands" begins around a hundred switches.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/fast/consumer.hpp"
#include "yanc/fast/syscall_model.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/yancfs.hpp"

using namespace yanc;

namespace {

flow::FlowSpec sample_flow(int i) {
  flow::FlowSpec spec;
  spec.match.dl_type = 0x0800;
  spec.match.tp_dst = static_cast<std::uint16_t>(1000 + i);
  spec.actions = {flow::Action::output(2)};
  return spec;
}

constexpr int kFlowsPerSwitch = 10;

void BM_BulkPush_FsPath(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = std::make_shared<vfs::Vfs>();
    (void)netfs::mount_yanc_fs(*v);
    for (int s = 0; s < switches; ++s)
      (void)v->mkdir("/net/switches/sw" + std::to_string(s));
    v->reset_counters();
    state.ResumeTiming();

    for (int s = 0; s < switches; ++s) {
      std::string base = "/net/switches/sw" + std::to_string(s) + "/flows/";
      for (int f = 0; f < kFlowsPerSwitch; ++f)
        (void)netfs::write_flow(*v, base + "f" + std::to_string(f),
                                sample_flow(f));
    }

    state.PauseTiming();
    fast::SyscallCostModel model;
    std::uint64_t syscalls = v->counters().total.load();
    state.counters["syscalls"] = benchmark::Counter(
        static_cast<double>(syscalls));
    state.counters["modeled_ms"] = benchmark::Counter(
        static_cast<double>(model.overhead_ns(syscalls)) / 1e6);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * switches * kFlowsPerSwitch);
}
BENCHMARK(BM_BulkPush_FsPath)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_BulkPush_Libyanc(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fast::FlowChannel channel(1 << 16);
    std::uint64_t delivered = 0;
    for (int s = 0; s < switches; ++s) {
      fast::FlowBatch batch;
      batch.switch_name = "sw" + std::to_string(s);
      for (int f = 0; f < kFlowsPerSwitch; ++f)
        batch.entries.emplace_back("f" + std::to_string(f), sample_flow(f));
      (void)channel.submit(std::move(batch));
    }
    auto stats = fast::drain_flow_channel(
        channel, ofp::Version::of10,
        [&](const std::string&, std::vector<std::uint8_t>) { ++delivered; });
    benchmark::DoNotOptimize(stats);
    state.counters["syscalls"] = benchmark::Counter(0);
    state.counters["flow_mods"] =
        benchmark::Counter(static_cast<double>(delivered));
  }
  state.SetItemsProcessed(state.iterations() * switches * kFlowsPerSwitch);
}
BENCHMARK(BM_BulkPush_Libyanc)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

YANC_BENCH_MAIN();
