// EXP-7 (§6): the cost of layering a distributed file system under the
// yanc FS.  "Each distributed file system has a different implementation
// ... with varying trade-offs."
//
// Measures one committed flow write (the controller's hot operation) on:
//   local          — plain YancFs, no replication (the floor)
//   strict@primary — primary-ordered replication, writer IS the primary
//   strict@replica — writer must round-trip the primary: the counter
//                    `sync_delay_us` reports the modelled synchronous
//                    latency the caller would block for
//   eventual       — apply locally, broadcast async (WheelFS-style)
// across cluster sizes, plus replication fan-out volume.
//
// Expected shape: CPU cost grows mildly with node count (op encoding and
// fan-out); the *latency* story is in sync_delay_us — zero everywhere
// except strict@replica, where it is 2 x link latency per op.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/cluster/harness.hpp"
#include "yanc/dist/replicated.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/handles.hpp"
#include "yanc/netfs/yancfs.hpp"

using namespace yanc;

namespace {

flow::FlowSpec sample_flow(std::uint64_t i) {
  flow::FlowSpec spec;
  spec.match.tp_dst = static_cast<std::uint16_t>(i % 60000);
  spec.actions = {flow::Action::output(2)};
  return spec;
}

void write_one_flow(vfs::Vfs& v, std::uint64_t i) {
  (void)netfs::write_flow(v, "/net/switches/sw1/flows/f" + std::to_string(i),
                          sample_flow(i));
}

void BM_Local_NoReplication(benchmark::State& state) {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  std::uint64_t i = 0;
  for (auto _ : state) write_one_flow(*v, i++);
  state.counters["sync_delay_us"] = benchmark::Counter(0);
}
BENCHMARK(BM_Local_NoReplication);

struct ClusterHarness {
  net::Scheduler scheduler;
  std::unique_ptr<dist::Cluster> cluster;
  std::shared_ptr<vfs::Vfs> writer_vfs;
  std::size_t writer_node;

  ClusterHarness(std::size_t nodes, dist::Mode mode, std::size_t writer) {
    cluster = std::make_unique<dist::Cluster>(
        scheduler,
        dist::ClusterOptions{.nodes = nodes,
                             .link_latency = std::chrono::microseconds(250),
                             .default_mode = mode});
    writer_node = writer;
    writer_vfs = std::make_shared<vfs::Vfs>();
    (void)writer_vfs->mkdir("/net");
    (void)writer_vfs->mount("/net", cluster->fs(writer));
    netfs::NetDir net(writer_vfs);
    (void)net.add_switch("sw1");
    scheduler.run_until_idle();
  }
};

void run_replicated(benchmark::State& state, dist::Mode mode,
                    std::size_t writer) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  ClusterHarness h(nodes, mode, writer);
  std::uint64_t i = 0;
  for (auto _ : state) {
    write_one_flow(*h.writer_vfs, i++);
    h.scheduler.run_until_idle();  // deliver replication traffic
  }
  auto fs = h.cluster->fs(h.writer_node);
  state.counters["sync_delay_us"] = benchmark::Counter(
      static_cast<double>(fs->sync_delay_ns()) / 1e3 /
      static_cast<double>(state.iterations()));
  state.counters["msgs_per_op"] = benchmark::Counter(
      static_cast<double>(h.cluster->transport().messages_sent()) /
      static_cast<double>(state.iterations()));
  state.counters["wire_bytes_op"] = benchmark::Counter(
      static_cast<double>(h.cluster->transport().bytes_sent()) /
      static_cast<double>(state.iterations()));
}

void BM_StrictAtPrimary(benchmark::State& state) {
  run_replicated(state, dist::Mode::strict, 0);
}
BENCHMARK(BM_StrictAtPrimary)->Arg(2)->Arg(3)->Arg(5);

void BM_StrictAtReplica(benchmark::State& state) {
  run_replicated(state, dist::Mode::strict, 1);
}
BENCHMARK(BM_StrictAtReplica)->Arg(2)->Arg(3)->Arg(5);

void BM_Eventual(benchmark::State& state) {
  run_replicated(state, dist::Mode::eventual, 1);
}
BENCHMARK(BM_Eventual)->Arg(2)->Arg(3)->Arg(5);

// Convergence latency after a partition heals: how long (virtual time)
// until a backlog of B ops reaches the other side.
void BM_PartitionHealBacklog(benchmark::State& state) {
  const int backlog = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::Scheduler scheduler;
    dist::Cluster cluster(
        scheduler,
        dist::ClusterOptions{.nodes = 2,
                             .link_latency = std::chrono::microseconds(250),
                             .default_mode = dist::Mode::eventual});
    auto v = std::make_shared<vfs::Vfs>();
    (void)v->mkdir("/net");
    (void)v->mount("/net", cluster.fs(0));
    netfs::NetDir net(v);
    (void)net.add_switch("sw1");
    scheduler.run_until_idle();
    cluster.partition(0, 1);
    for (int i = 0; i < backlog; ++i) write_one_flow(*v, i);
    state.ResumeTiming();

    cluster.heal(0, 1);
    scheduler.run_until_idle();
    benchmark::DoNotOptimize(cluster.fs(1)->remote_ops_applied());
  }
  state.SetItemsProcessed(state.iterations() * backlog);
}
BENCHMARK(BM_PartitionHealBacklog)->Arg(10)->Arg(100)->Arg(1000);

// Active-cluster failover (docs/ROBUSTNESS.md "Cluster failover"): kill
// the primary for a shard, then drive the cluster until a successor
// owns the shard and the committed flows are back on the hardware.
// Wall time is the CPU cost of the whole elect -> re-home -> resync
// machinery; the counters report convergence in cluster rounds and in
// modelled (virtual-clock) time, which is what an operator would see.
void BM_ClusterFailover(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  double total_rounds = 0, total_virtual_us = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cluster::HarnessOptions options;
    options.nodes = nodes;
    options.switches = 1;
    cluster::Harness h(options);
    h.settle();
    auto owner = h.owner_of(1);
    for (int i = 0; i < 8; ++i)
      (void)h.commit_flow(*owner, 1, "f" + std::to_string(i),
                          sample_flow(i));
    h.settle(4);
    const auto t0 = h.scheduler().clock().now_ns();
    state.ResumeTiming();

    h.kill(*owner);
    std::size_t rounds = 0;
    while (rounds < 200) {
      h.tick();
      ++rounds;
      auto successor = h.owner_of(1);
      if (successor && successor != owner &&
          h.hw_flows(1) == h.fs_flows(*successor, 1))
        break;
    }
    total_rounds += static_cast<double>(rounds);
    total_virtual_us +=
        static_cast<double>(h.scheduler().clock().now_ns() - t0) / 1e3;
  }
  state.counters["failover_rounds"] = benchmark::Counter(
      total_rounds / static_cast<double>(state.iterations()));
  state.counters["failover_virtual_us"] = benchmark::Counter(
      total_virtual_us / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ClusterFailover)->Arg(2)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

YANC_BENCH_MAIN();
