// EXP-6 (§4.2): "views can be stacked arbitrarily on top of one another"
// — at what cost?  Measures the end-to-end latency of committing a flow
// in the innermost view of a D-deep slicer stack until it materializes,
// fully translated, in the master view.
//
// Expected shape: ~linear in depth with a small per-layer constant (each
// layer re-reads the flow, intersects the match, and rewrites it one
// level up).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/net/packet.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/handles.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/view/slicer.hpp"

using namespace yanc;

namespace {

struct Stack {
  std::shared_ptr<vfs::Vfs> vfs;
  std::vector<std::unique_ptr<view::Slicer>> slicers;  // outermost first
  std::string innermost_root;
};

Stack build_stack(int depth) {
  Stack stack;
  stack.vfs = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*stack.vfs);
  netfs::NetDir net(stack.vfs);
  (void)net.add_switch("sw1");
  for (std::uint16_t p = 1; p <= 4; ++p)
    (void)net.switch_at("sw1").add_port(p, MacAddress::from_u64(p), "eth");

  std::string root = "/net";
  for (int d = 0; d < depth; ++d) {
    view::SliceConfig cfg;
    cfg.name = "layer" + std::to_string(d);
    // Each layer narrows one more field so the translation does real work.
    switch (d % 4) {
      case 0: cfg.predicate.dl_type = 0x0800; break;
      case 1: cfg.predicate.nw_proto = 6; break;
      case 2: cfg.predicate.tp_dst = 22; break;
      case 3: cfg.predicate.nw_dst = *Cidr::parse("10.0.0.0/8"); break;
    }
    auto slicer = std::make_unique<view::Slicer>(stack.vfs, root, cfg);
    (void)slicer->init();
    root = slicer->view_root();
    stack.slicers.push_back(std::move(slicer));
  }
  stack.innermost_root = root;
  return stack;
}

// Steady-state cycle: commit one flow in the innermost view, propagate it
// through every layer, then retract it (and propagate the retraction), so
// the view size stays constant and the measurement is the per-flow
// translation cost — not an ever-growing rescan.
void BM_FlowThroughStack(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto stack = build_stack(depth);
  std::uint64_t i = 0;
  for (auto _ : state) {
    flow::FlowSpec spec;
    spec.match.tp_src = static_cast<std::uint16_t>(1 + (i++ % 60000));
    spec.actions = {flow::Action::output(2)};
    std::string flow_dir = stack.innermost_root + "/switches/sw1/flows/f";
    (void)netfs::write_flow(*stack.vfs, flow_dir, spec);
    // Propagate inner -> outer.
    for (auto it = stack.slicers.rbegin(); it != stack.slicers.rend(); ++it)
      (void)(*it)->poll();
    // Retract and propagate the retraction.
    (void)stack.vfs->rmdir(flow_dir);
    for (auto it = stack.slicers.rbegin(); it != stack.slicers.rend(); ++it)
      (void)(*it)->poll();
  }
  state.counters["depth"] = benchmark::Counter(static_cast<double>(depth));
}
BENCHMARK(BM_FlowThroughStack)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

// The pure translation cost (match intersection + action confinement),
// isolated from file I/O.
void BM_MatchIntersection(benchmark::State& state) {
  flow::Match slice;
  slice.dl_type = 0x0800;
  slice.nw_proto = 6;
  slice.tp_dst = 22;
  flow::Match app;
  app.nw_src = *Cidr::parse("10.1.0.0/16");
  app.in_port = 3;
  for (auto _ : state) benchmark::DoNotOptimize(slice.intersect(app));
}
BENCHMARK(BM_MatchIntersection);

// Packet-in filtering through one slicer (the view events path).
void BM_EventFilterThroughSlice(benchmark::State& state) {
  auto stack = build_stack(1);
  auto& slicer = *stack.slicers[0];
  netfs::NetDir view(stack.vfs, slicer.view_root());
  auto buf = view.open_events("app");
  auto frame = net::build_tcp(MacAddress::from_u64(2),
                              MacAddress::from_u64(1),
                              *Ipv4Address::parse("10.0.0.1"),
                              *Ipv4Address::parse("10.0.0.2"), 1, 22, {});
  std::string data(reinterpret_cast<const char*>(frame.data()),
                   frame.size());
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::string dir =
        "/net/events/slicer-layer0/pkt_" + std::to_string(i++);
    (void)stack.vfs->mkdir(dir);
    (void)stack.vfs->write_file(dir + "/datapath", "sw1");
    (void)stack.vfs->write_file(dir + "/in_port", "1");
    (void)stack.vfs->write_file(dir + "/data", data);
    (void)slicer.poll();
    (void)buf->drain();
  }
}
BENCHMARK(BM_EventFilterThroughSlice);

}  // namespace

YANC_BENCH_MAIN();
