// EXP-1 (§8.1): the per-access cost of the file-system interface.
//
// "Each fine-grained access to the file system is done through a system
// call — for example read(), write(), and stat() — which switches context
// from the application to the kernel."
//
// Our VFS is in-process, so each benchmark reports two things:
//   * the raw in-process cost of the operation (real_time), and
//   * `syscalls` — how many application/kernel boundary crossings the same
//     sequence would take on the paper's FUSE prototype (the Vfs op
//     counter), from which modelled overhead at ~500ns/crossing follows.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/fast/syscall_model.hpp"
#include "yanc/netfs/yancfs.hpp"

using namespace yanc;

namespace {

std::shared_ptr<vfs::Vfs> fresh_fs() {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  return v;
}

void report_syscalls(benchmark::State& state, const vfs::Vfs& v) {
  fast::SyscallCostModel model;
  double ops = static_cast<double>(v.counters().total.load());
  state.counters["syscalls"] =
      benchmark::Counter(ops, benchmark::Counter::kIsRate);
  state.counters["modeled_ns_op"] = benchmark::Counter(
      static_cast<double>(model.overhead_ns(v.counters().total.load())) /
      static_cast<double>(state.iterations()));
}

void BM_WriteFile(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        v->write_file("/net/switches/sw1/id", "0xabcdef"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_WriteFile);

void BM_ReadFile(benchmark::State& state) {
  auto v = fresh_fs();
  (void)v->write_file("/net/switches/sw1/id", "0xabcdef");
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->read_file("/net/switches/sw1/id"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_ReadFile);

void BM_Stat(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->stat("/net/switches/sw1/id"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_Stat);

// Path depth dominates resolution cost: every component is a lookup.
void BM_StatAtDepth(benchmark::State& state) {
  auto v = std::make_shared<vfs::Vfs>();
  std::string path;
  for (int d = 0; d < state.range(0); ++d) {
    path += "/d" + std::to_string(d);
    (void)v->mkdir(path);
  }
  (void)v->write_file(path + "/leaf", "x");
  path += "/leaf";
  v->reset_counters();
  for (auto _ : state) benchmark::DoNotOptimize(v->stat(path));
  report_syscalls(state, *v);
}
BENCHMARK(BM_StatAtDepth)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_Readdir64(benchmark::State& state) {
  auto v = fresh_fs();
  for (int i = 0; i < 64; ++i)
    (void)v->mkdir("/net/switches/sw1/flows/f" + std::to_string(i));
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->readdir("/net/switches/sw1/flows"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_Readdir64);

void BM_MkdirRmdirFlow(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  for (auto _ : state) {
    (void)v->mkdir("/net/switches/sw1/flows/bench");
    (void)v->rmdir("/net/switches/sw1/flows/bench");
  }
  report_syscalls(state, *v);
}
BENCHMARK(BM_MkdirRmdirFlow);

// Typed-file validation is on the write path; how much does it cost?
void BM_ValidatedWriteCidr(benchmark::State& state) {
  auto v = fresh_fs();
  (void)v->mkdir("/net/switches/sw1/flows/f");
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->write_file(
        "/net/switches/sw1/flows/f/match.nw_src", "10.20.0.0/16"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_ValidatedWriteCidr);

}  // namespace

YANC_BENCH_MAIN();
