// EXP-1 (§8.1): the per-access cost of the file-system interface.
//
// "Each fine-grained access to the file system is done through a system
// call — for example read(), write(), and stat() — which switches context
// from the application to the kernel."
//
// Our VFS is in-process, so each benchmark reports two things:
//   * the raw in-process cost of the operation (real_time), and
//   * `syscalls` — how many application/kernel boundary crossings the same
//     sequence would take on the paper's FUSE prototype (the Vfs op
//     counter), from which modelled overhead at ~500ns/crossing follows.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/fast/syscall_model.hpp"
#include "yanc/netfs/yancfs.hpp"

using namespace yanc;

namespace {

std::shared_ptr<vfs::Vfs> fresh_fs() {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  (void)v->mkdir("/net/switches/sw1");
  return v;
}

void report_syscalls(benchmark::State& state, const vfs::Vfs& v) {
  fast::SyscallCostModel model;
  double ops = static_cast<double>(v.counters().total.load());
  state.counters["syscalls"] =
      benchmark::Counter(ops, benchmark::Counter::kIsRate);
  state.counters["modeled_ns_op"] = benchmark::Counter(
      static_cast<double>(model.overhead_ns(v.counters().total.load())) /
      static_cast<double>(state.iterations()));
}

void BM_WriteFile(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        v->write_file("/net/switches/sw1/id", "0xabcdef"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_WriteFile);

void BM_ReadFile(benchmark::State& state) {
  auto v = fresh_fs();
  (void)v->write_file("/net/switches/sw1/id", "0xabcdef");
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->read_file("/net/switches/sw1/id"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_ReadFile);

void BM_Stat(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->stat("/net/switches/sw1/id"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_Stat);

// Path depth dominates resolution cost: every component is a lookup.
void BM_StatAtDepth(benchmark::State& state) {
  auto v = std::make_shared<vfs::Vfs>();
  std::string path;
  for (int d = 0; d < state.range(0); ++d) {
    path += "/d" + std::to_string(d);
    (void)v->mkdir(path);
  }
  (void)v->write_file(path + "/leaf", "x");
  path += "/leaf";
  v->reset_counters();
  for (auto _ : state) benchmark::DoNotOptimize(v->stat(path));
  report_syscalls(state, *v);
}
BENCHMARK(BM_StatAtDepth)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_Readdir64(benchmark::State& state) {
  auto v = fresh_fs();
  for (int i = 0; i < 64; ++i)
    (void)v->mkdir("/net/switches/sw1/flows/f" + std::to_string(i));
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->readdir("/net/switches/sw1/flows"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_Readdir64);

void BM_MkdirRmdirFlow(benchmark::State& state) {
  auto v = fresh_fs();
  v->reset_counters();
  for (auto _ : state) {
    (void)v->mkdir("/net/switches/sw1/flows/bench");
    (void)v->rmdir("/net/switches/sw1/flows/bench");
  }
  report_syscalls(state, *v);
}
BENCHMARK(BM_MkdirRmdirFlow);

// Typed-file validation is on the write path; how much does it cost?
void BM_ValidatedWriteCidr(benchmark::State& state) {
  auto v = fresh_fs();
  (void)v->mkdir("/net/switches/sw1/flows/f");
  v->reset_counters();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->write_file(
        "/net/switches/sw1/flows/f/match.nw_src", "10.20.0.0/16"));
  report_syscalls(state, *v);
}
BENCHMARK(BM_ValidatedWriteCidr);

// --- concurrent read-path scaling (EXP-1, threaded) -------------------------
//
// The acceptance bar for the sharded-locking work: aggregate read/stat
// throughput with 8 reader threads must be ≥ 3× the single-thread figure
// (items_per_second at /threads:8 vs /threads:1).  Under the old global
// mutex this ratio was ~1×.  Shared state is set up by thread 0; the
// state-loop barrier publishes it to the other threads.

void BM_ReadFileThreaded(benchmark::State& state) {
  static std::shared_ptr<vfs::Vfs> v;
  if (state.thread_index() == 0) {
    v = fresh_fs();
    (void)v->write_file("/net/switches/sw1/id", "0xabcdef");
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(v->read_file("/net/switches/sw1/id"));
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) v.reset();
}
BENCHMARK(BM_ReadFileThreaded)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_StatThreaded(benchmark::State& state) {
  static std::shared_ptr<vfs::Vfs> v;
  if (state.thread_index() == 0) v = fresh_fs();
  for (auto _ : state)
    benchmark::DoNotOptimize(v->stat("/net/switches/sw1/id"));
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) v.reset();
}
BENCHMARK(BM_StatThreaded)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// Each thread reads its own file: content access serializes only on the
// file's own lock shard, so this is the pure-parallelism ceiling.
void BM_ReadDistinctFilesThreaded(benchmark::State& state) {
  static std::shared_ptr<vfs::Vfs> v;
  if (state.thread_index() == 0) {
    v = std::make_shared<vfs::Vfs>();
    (void)v->mkdir("/data");
    for (int t = 0; t < 64; ++t)
      (void)v->write_file("/data/f" + std::to_string(t),
                          std::string(256, 'x'));
  }
  std::string mine = "/data/f" + std::to_string(state.thread_index());
  for (auto _ : state) benchmark::DoNotOptimize(v->read_file(mine));
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) v.reset();
}
BENCHMARK(BM_ReadDistinctFilesThreaded)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// Readers make progress while thread 0 keeps rewriting its own file: the
// writer holds mu_ shared + one shard, so only readers of that same file
// wait on it.
void BM_MixedReadersOneWriterThreaded(benchmark::State& state) {
  static std::shared_ptr<vfs::Vfs> v;
  if (state.thread_index() == 0) {
    v = std::make_shared<vfs::Vfs>();
    (void)v->mkdir("/data");
    for (int t = 0; t < 64; ++t)
      (void)v->write_file("/data/f" + std::to_string(t),
                          std::string(256, 'x'));
  }
  if (state.thread_index() == 0) {
    std::string payload(256, 'y');
    for (auto _ : state)
      benchmark::DoNotOptimize(v->write_file("/data/f0", payload));
  } else {
    std::string mine = "/data/f" + std::to_string(state.thread_index());
    for (auto _ : state) benchmark::DoNotOptimize(v->read_file(mine));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) v.reset();
}
BENCHMARK(BM_MixedReadersOneWriterThreaded)
    ->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

}  // namespace

YANC_BENCH_MAIN();
