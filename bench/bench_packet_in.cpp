// EXP-4 (§8.1 + §3.5): packet-in fan-out to M applications — file-system
// event buffers (one private copy per app) vs libyanc's zero-copy packet
// pool (one write, M references).
//
// Expected shape: the FS path grows ~linearly in M x payload (every app's
// buffer gets mkdir + 6 file writes including the payload copy); the
// zero-copy path is ~flat in M and independent of payload size.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>

#include "yanc/fast/packet_pool.hpp"
#include "yanc/fast/ring.hpp"
#include "yanc/netfs/yancfs.hpp"

using namespace yanc;

namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>(i * 31);
  return p;
}

// The driver's §3.5 delivery: one pkt_* directory per application buffer.
void BM_FanOut_FsEvents(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  for (int a = 0; a < apps; ++a)
    (void)v->mkdir("/net/events/app" + std::to_string(a));
  auto frame = payload(bytes);
  std::string data(reinterpret_cast<const char*>(frame.data()),
                   frame.size());

  std::uint64_t seq = 0;
  for (auto _ : state) {
    std::string name = "pkt_" + std::to_string(seq++);
    for (int a = 0; a < apps; ++a) {
      std::string dir = "/net/events/app" + std::to_string(a) + "/" + name;
      (void)v->mkdir(dir);
      (void)v->write_file(dir + "/datapath", "sw1");
      (void)v->write_file(dir + "/in_port", "3");
      (void)v->write_file(dir + "/reason", "no_match");
      (void)v->write_file(dir + "/data", data);
    }
    // Consumers read + remove (the app side of the buffer protocol).
    for (int a = 0; a < apps; ++a) {
      std::string dir = "/net/events/app" + std::to_string(a) + "/" + name;
      benchmark::DoNotOptimize(v->read_file(dir + "/data"));
      (void)v->remove_all(dir);
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes) * apps);
  state.counters["copies"] = benchmark::Counter(static_cast<double>(apps));
}
BENCHMARK(BM_FanOut_FsEvents)
    ->Args({1, 128})
    ->Args({2, 128})
    ->Args({4, 128})
    ->Args({8, 128})
    ->Args({1, 1500})
    ->Args({4, 1500})
    ->Args({8, 1500});

// libyanc: one pool write + M 16-byte references through SPSC rings.
void BM_FanOut_ZeroCopy(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  fast::PacketPool pool(64, 2048);
  std::vector<std::unique_ptr<fast::SpscRing<fast::PacketRef>>> rings;
  for (int a = 0; a < apps; ++a)
    rings.push_back(std::make_unique<fast::SpscRing<fast::PacketRef>>(64));
  auto frame = payload(bytes);

  for (auto _ : state) {
    auto ref = pool.emplace(frame, 1, 3);
    for (auto& ring : rings) (void)ring->push(*ref);
    *ref = fast::PacketRef{};
    // Consumers read the shared bytes and drop their reference.
    std::uint64_t checksum = 0;
    for (auto& ring : rings) {
      auto got = ring->pop();
      checksum += got->data()[0];
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes) * apps);
  state.counters["copies"] = benchmark::Counter(1);  // the pool write
}
BENCHMARK(BM_FanOut_ZeroCopy)
    ->Args({1, 128})
    ->Args({2, 128})
    ->Args({4, 128})
    ->Args({8, 128})
    ->Args({1, 1500})
    ->Args({4, 1500})
    ->Args({8, 1500});

}  // namespace

YANC_BENCH_MAIN();
