// EXP-8 (§4.1): thin per-protocol drivers, OpenFlow 1.0 and 1.3 side by
// side.  Codec throughput for the hot message types, and the end-to-end
// driver pipeline rate: FS commit -> watch -> FLOW_MOD on the wire.
//
// Expected shape: 1.3 costs more per message than 1.0 (OXM TLVs vs fixed
// struct) but both are far below the file-system path cost — the driver
// is not the bottleneck, which is the §4.1 "thin driver" claim.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/driver/of_driver.hpp"
#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/ofp/codec.hpp"
#include "yanc/sw/switch.hpp"

using namespace yanc;

namespace {

ofp::FlowMod rich_flow_mod() {
  ofp::FlowMod fm;
  fm.spec.match.in_port = 3;
  fm.spec.match.dl_src = MacAddress::from_u64(0x020000000001);
  fm.spec.match.dl_dst = MacAddress::from_u64(0x020000000002);
  fm.spec.match.dl_type = 0x0800;
  fm.spec.match.nw_src = *Cidr::parse("10.0.0.0/8");
  fm.spec.match.nw_dst = *Cidr::parse("192.168.1.5");
  fm.spec.match.nw_proto = 6;
  fm.spec.match.tp_dst = 22;
  fm.spec.actions = {
      flow::Action{flow::ActionKind::set_dl_dst,
                   MacAddress::from_u64(0x020000000009)},
      flow::Action::output(7)};
  fm.spec.priority = 100;
  return fm;
}

ofp::Version version_arg(const benchmark::State& state) {
  return state.range(0) == 0 ? ofp::Version::of10 : ofp::Version::of13;
}

void BM_EncodeFlowMod(benchmark::State& state) {
  auto v = version_arg(state);
  auto fm = rich_flow_mod();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = ofp::encode(v, 1, fm);
    bytes += encoded->size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes_msg"] = benchmark::Counter(
      static_cast<double>(bytes) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_EncodeFlowMod)->Arg(0)->Arg(1);

void BM_DecodeFlowMod(benchmark::State& state) {
  auto v = version_arg(state);
  auto bytes = *ofp::encode(v, 1, rich_flow_mod());
  for (auto _ : state) benchmark::DoNotOptimize(ofp::decode(bytes));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeFlowMod)->Arg(0)->Arg(1);

void BM_EncodePacketIn(benchmark::State& state) {
  auto v = version_arg(state);
  ofp::PacketIn pi;
  pi.buffer_id = 7;
  pi.in_port = 3;
  pi.data.assign(128, 0xab);
  pi.total_len = 128;
  for (auto _ : state) benchmark::DoNotOptimize(ofp::encode(v, 1, pi));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodePacketIn)->Arg(0)->Arg(1);

void BM_DecodePacketIn(benchmark::State& state) {
  auto v = version_arg(state);
  ofp::PacketIn pi;
  pi.data.assign(128, 0xab);
  auto bytes = *ofp::encode(v, 1, pi);
  for (auto _ : state) benchmark::DoNotOptimize(ofp::decode(bytes));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodePacketIn)->Arg(0)->Arg(1);

// End-to-end driver pipeline: committed FS flow -> FLOW_MOD installed in
// the switch's table, everything in between included (watch dispatch,
// flowio read-back, encode, channel, switch decode + table add).
void BM_DriverPipeline(benchmark::State& state) {
  auto v = version_arg(state);
  auto vfs = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*vfs);
  driver::DriverOptions opts;
  opts.version = v;
  driver::OfDriver driver(vfs, opts);
  net::Scheduler scheduler;
  net::Network network(scheduler);
  sw::SwitchOptions sopts;
  sopts.datapath_id = 1;
  sopts.version = v;
  sw::Switch s("dp1", sopts, network);
  for (std::uint16_t p = 1; p <= 4; ++p)
    s.add_port(p, MacAddress::from_u64(p), "eth");
  s.connect(driver.listener().connect());
  for (int i = 0; i < 30; ++i) {
    if (driver.poll() + s.pump() + scheduler.run_until_idle() == 0) break;
  }

  std::uint64_t i = 0;
  for (auto _ : state) {
    flow::FlowSpec spec;
    spec.match.tp_dst = static_cast<std::uint16_t>(i % 60000);
    spec.actions = {flow::Action::output(2)};
    (void)netfs::write_flow(
        *vfs, "/net/switches/sw1/flows/f" + std::to_string(i), spec);
    while (driver.poll() + s.pump()) {
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["table_size"] =
      benchmark::Counter(static_cast<double>(s.table().size()));
}
BENCHMARK(BM_DriverPipeline)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// The software switch's own matching rate under a populated table.
void BM_SwitchLookup(benchmark::State& state) {
  const int table_size = static_cast<int>(state.range(0));
  sw::FlowTable table;
  for (int i = 0; i < table_size; ++i) {
    flow::FlowSpec spec;
    spec.match.tp_dst = static_cast<std::uint16_t>(i);
    spec.priority = static_cast<std::uint16_t>(i % 100);
    spec.actions = {flow::Action::output(1)};
    table.add(spec, 0, 0);
  }
  flow::FieldValues pkt;
  pkt.tp_dst = static_cast<std::uint16_t>(table_size / 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(table.lookup(pkt, 0, 64, false));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchLookup)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

YANC_BENCH_MAIN();
