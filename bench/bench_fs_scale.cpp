// EXP-9 (§5.4): the administrator's tools at scale.  "A quick overview of
// the switches in a network can be provided by: $ ls -l /net/switches" —
// how quick, with 10,000 switches?
//
// Sweeps network size and measures ls, ls -l, tree-walking find, and
// recursive grep over the live yanc FS.
//
// Expected shape: ls is linear in directory size; find/grep are linear in
// total tree size (switches x files-per-switch); all remain interactive
// (well under a second) even at 10k switches.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "yanc/netfs/flowio.hpp"
#include "yanc/netfs/yancfs.hpp"
#include "yanc/shell/coreutils.hpp"

using namespace yanc;

namespace {

std::shared_ptr<vfs::Vfs> build_network(int switches, int flows_per_switch) {
  auto v = std::make_shared<vfs::Vfs>();
  (void)netfs::mount_yanc_fs(*v);
  for (int s = 0; s < switches; ++s) {
    std::string sw = "/net/switches/sw" + std::to_string(s);
    (void)v->mkdir(sw);
    for (int f = 0; f < flows_per_switch; ++f) {
      flow::FlowSpec spec;
      spec.match.tp_dst = static_cast<std::uint16_t>(f == 0 ? 22 : 1000 + f);
      spec.actions = {flow::Action::output(1)};
      (void)netfs::write_flow(*v, sw + "/flows/f" + std::to_string(f), spec);
    }
  }
  return v;
}

void BM_Ls(benchmark::State& state) {
  auto v = build_network(static_cast<int>(state.range(0)), 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(shell::ls(*v, "/net/switches"));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Ls)->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_LsLong(benchmark::State& state) {
  auto v = build_network(static_cast<int>(state.range(0)), 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(shell::ls(*v, "/net/switches", true));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LsLong)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_FindTpDst(benchmark::State& state) {
  auto v = build_network(static_cast<int>(state.range(0)), 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(shell::find_name(*v, "/net", "match.tp_dst"));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FindTpDst)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// The full paper one-liner: find ... -exec grep 22.
void BM_SshFlowQuery(benchmark::State& state) {
  auto v = build_network(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    auto flows = shell::flows_matching_port(*v, "/net", 22);
    benchmark::DoNotOptimize(flows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SshFlowQuery)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_GrepRecursive(benchmark::State& state) {
  auto v = build_network(static_cast<int>(state.range(0)), 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(shell::grep_recursive(*v, "/net", "22"));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GrepRecursive)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Creation rate: how fast can the FS materialize switch objects (driver
// connect storms)?
void BM_SwitchCreation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto v = std::make_shared<vfs::Vfs>();
    (void)netfs::mount_yanc_fs(*v);
    state.ResumeTiming();
    for (int s = 0; s < state.range(0); ++s)
      (void)v->mkdir("/net/switches/sw" + std::to_string(s));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwitchCreation)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Concurrent administrators: N threads all running `ls /net/switches` at
// once.  Under the shared-mutex read path these scale with cores instead
// of serializing on the filesystem lock.
void BM_LsThreaded(benchmark::State& state) {
  static std::shared_ptr<vfs::Vfs> v;
  if (state.thread_index() == 0) v = build_network(1000, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(shell::ls(*v, "/net/switches"));
  state.SetItemsProcessed(state.iterations() * 1000);
  if (state.thread_index() == 0) v.reset();
}
BENCHMARK(BM_LsThreaded)
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

YANC_BENCH_MAIN();
