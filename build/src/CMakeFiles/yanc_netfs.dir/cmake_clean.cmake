file(REMOVE_RECURSE
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/flowio.cpp.o"
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/flowio.cpp.o.d"
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/handles.cpp.o"
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/handles.cpp.o.d"
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/schema.cpp.o"
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/schema.cpp.o.d"
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/yancfs.cpp.o"
  "CMakeFiles/yanc_netfs.dir/yanc/netfs/yancfs.cpp.o.d"
  "libyanc_netfs.a"
  "libyanc_netfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_netfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
