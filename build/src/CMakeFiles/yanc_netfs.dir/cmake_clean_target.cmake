file(REMOVE_RECURSE
  "libyanc_netfs.a"
)
