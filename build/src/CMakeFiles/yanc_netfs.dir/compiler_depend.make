# Empty compiler generated dependencies file for yanc_netfs.
# This may be replaced when dependencies are built.
