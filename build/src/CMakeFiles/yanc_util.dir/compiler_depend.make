# Empty compiler generated dependencies file for yanc_util.
# This may be replaced when dependencies are built.
