
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yanc/util/error.cpp" "src/CMakeFiles/yanc_util.dir/yanc/util/error.cpp.o" "gcc" "src/CMakeFiles/yanc_util.dir/yanc/util/error.cpp.o.d"
  "/root/repo/src/yanc/util/log.cpp" "src/CMakeFiles/yanc_util.dir/yanc/util/log.cpp.o" "gcc" "src/CMakeFiles/yanc_util.dir/yanc/util/log.cpp.o.d"
  "/root/repo/src/yanc/util/net_types.cpp" "src/CMakeFiles/yanc_util.dir/yanc/util/net_types.cpp.o" "gcc" "src/CMakeFiles/yanc_util.dir/yanc/util/net_types.cpp.o.d"
  "/root/repo/src/yanc/util/strings.cpp" "src/CMakeFiles/yanc_util.dir/yanc/util/strings.cpp.o" "gcc" "src/CMakeFiles/yanc_util.dir/yanc/util/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
