file(REMOVE_RECURSE
  "CMakeFiles/yanc_util.dir/yanc/util/error.cpp.o"
  "CMakeFiles/yanc_util.dir/yanc/util/error.cpp.o.d"
  "CMakeFiles/yanc_util.dir/yanc/util/log.cpp.o"
  "CMakeFiles/yanc_util.dir/yanc/util/log.cpp.o.d"
  "CMakeFiles/yanc_util.dir/yanc/util/net_types.cpp.o"
  "CMakeFiles/yanc_util.dir/yanc/util/net_types.cpp.o.d"
  "CMakeFiles/yanc_util.dir/yanc/util/strings.cpp.o"
  "CMakeFiles/yanc_util.dir/yanc/util/strings.cpp.o.d"
  "libyanc_util.a"
  "libyanc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
