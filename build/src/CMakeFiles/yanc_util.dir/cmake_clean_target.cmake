file(REMOVE_RECURSE
  "libyanc_util.a"
)
