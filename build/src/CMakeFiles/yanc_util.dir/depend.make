# Empty dependencies file for yanc_util.
# This may be replaced when dependencies are built.
