
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yanc/ofp/codec.cpp" "src/CMakeFiles/yanc_ofp.dir/yanc/ofp/codec.cpp.o" "gcc" "src/CMakeFiles/yanc_ofp.dir/yanc/ofp/codec.cpp.o.d"
  "/root/repo/src/yanc/ofp/oxm.cpp" "src/CMakeFiles/yanc_ofp.dir/yanc/ofp/oxm.cpp.o" "gcc" "src/CMakeFiles/yanc_ofp.dir/yanc/ofp/oxm.cpp.o.d"
  "/root/repo/src/yanc/ofp/wire10.cpp" "src/CMakeFiles/yanc_ofp.dir/yanc/ofp/wire10.cpp.o" "gcc" "src/CMakeFiles/yanc_ofp.dir/yanc/ofp/wire10.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/yanc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yanc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
