# Empty compiler generated dependencies file for yanc_ofp.
# This may be replaced when dependencies are built.
