file(REMOVE_RECURSE
  "libyanc_ofp.a"
)
