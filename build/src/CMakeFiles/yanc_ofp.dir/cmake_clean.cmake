file(REMOVE_RECURSE
  "CMakeFiles/yanc_ofp.dir/yanc/ofp/codec.cpp.o"
  "CMakeFiles/yanc_ofp.dir/yanc/ofp/codec.cpp.o.d"
  "CMakeFiles/yanc_ofp.dir/yanc/ofp/oxm.cpp.o"
  "CMakeFiles/yanc_ofp.dir/yanc/ofp/oxm.cpp.o.d"
  "CMakeFiles/yanc_ofp.dir/yanc/ofp/wire10.cpp.o"
  "CMakeFiles/yanc_ofp.dir/yanc/ofp/wire10.cpp.o.d"
  "libyanc_ofp.a"
  "libyanc_ofp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_ofp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
