# Empty dependencies file for yanc_view.
# This may be replaced when dependencies are built.
