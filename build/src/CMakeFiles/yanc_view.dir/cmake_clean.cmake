file(REMOVE_RECURSE
  "CMakeFiles/yanc_view.dir/yanc/view/bigswitch.cpp.o"
  "CMakeFiles/yanc_view.dir/yanc/view/bigswitch.cpp.o.d"
  "CMakeFiles/yanc_view.dir/yanc/view/slicer.cpp.o"
  "CMakeFiles/yanc_view.dir/yanc/view/slicer.cpp.o.d"
  "libyanc_view.a"
  "libyanc_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
