file(REMOVE_RECURSE
  "libyanc_view.a"
)
