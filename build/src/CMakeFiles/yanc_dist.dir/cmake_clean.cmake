file(REMOVE_RECURSE
  "CMakeFiles/yanc_dist.dir/yanc/dist/replicated.cpp.o"
  "CMakeFiles/yanc_dist.dir/yanc/dist/replicated.cpp.o.d"
  "CMakeFiles/yanc_dist.dir/yanc/dist/transport.cpp.o"
  "CMakeFiles/yanc_dist.dir/yanc/dist/transport.cpp.o.d"
  "libyanc_dist.a"
  "libyanc_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
