# Empty compiler generated dependencies file for yanc_dist.
# This may be replaced when dependencies are built.
