file(REMOVE_RECURSE
  "libyanc_dist.a"
)
