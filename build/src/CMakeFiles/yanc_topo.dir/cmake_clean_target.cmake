file(REMOVE_RECURSE
  "libyanc_topo.a"
)
