file(REMOVE_RECURSE
  "CMakeFiles/yanc_topo.dir/yanc/topo/discovery.cpp.o"
  "CMakeFiles/yanc_topo.dir/yanc/topo/discovery.cpp.o.d"
  "CMakeFiles/yanc_topo.dir/yanc/topo/graph.cpp.o"
  "CMakeFiles/yanc_topo.dir/yanc/topo/graph.cpp.o.d"
  "libyanc_topo.a"
  "libyanc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
