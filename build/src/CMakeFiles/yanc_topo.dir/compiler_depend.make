# Empty compiler generated dependencies file for yanc_topo.
# This may be replaced when dependencies are built.
