
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yanc/net/channel.cpp" "src/CMakeFiles/yanc_net.dir/yanc/net/channel.cpp.o" "gcc" "src/CMakeFiles/yanc_net.dir/yanc/net/channel.cpp.o.d"
  "/root/repo/src/yanc/net/packet.cpp" "src/CMakeFiles/yanc_net.dir/yanc/net/packet.cpp.o" "gcc" "src/CMakeFiles/yanc_net.dir/yanc/net/packet.cpp.o.d"
  "/root/repo/src/yanc/net/simnet.cpp" "src/CMakeFiles/yanc_net.dir/yanc/net/simnet.cpp.o" "gcc" "src/CMakeFiles/yanc_net.dir/yanc/net/simnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/yanc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
