# Empty dependencies file for yanc_net.
# This may be replaced when dependencies are built.
