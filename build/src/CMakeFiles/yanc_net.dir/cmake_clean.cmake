file(REMOVE_RECURSE
  "CMakeFiles/yanc_net.dir/yanc/net/channel.cpp.o"
  "CMakeFiles/yanc_net.dir/yanc/net/channel.cpp.o.d"
  "CMakeFiles/yanc_net.dir/yanc/net/packet.cpp.o"
  "CMakeFiles/yanc_net.dir/yanc/net/packet.cpp.o.d"
  "CMakeFiles/yanc_net.dir/yanc/net/simnet.cpp.o"
  "CMakeFiles/yanc_net.dir/yanc/net/simnet.cpp.o.d"
  "libyanc_net.a"
  "libyanc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
