file(REMOVE_RECURSE
  "libyanc_net.a"
)
