# Empty dependencies file for yanc_driver.
# This may be replaced when dependencies are built.
