file(REMOVE_RECURSE
  "CMakeFiles/yanc_driver.dir/yanc/driver/of_driver.cpp.o"
  "CMakeFiles/yanc_driver.dir/yanc/driver/of_driver.cpp.o.d"
  "CMakeFiles/yanc_driver.dir/yanc/driver/text_driver.cpp.o"
  "CMakeFiles/yanc_driver.dir/yanc/driver/text_driver.cpp.o.d"
  "libyanc_driver.a"
  "libyanc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
