file(REMOVE_RECURSE
  "libyanc_driver.a"
)
