# Empty compiler generated dependencies file for yanc_driver.
# This may be replaced when dependencies are built.
