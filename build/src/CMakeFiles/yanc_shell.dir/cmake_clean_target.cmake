file(REMOVE_RECURSE
  "libyanc_shell.a"
)
