# Empty compiler generated dependencies file for yanc_shell.
# This may be replaced when dependencies are built.
