file(REMOVE_RECURSE
  "CMakeFiles/yanc_shell.dir/yanc/shell/coreutils.cpp.o"
  "CMakeFiles/yanc_shell.dir/yanc/shell/coreutils.cpp.o.d"
  "libyanc_shell.a"
  "libyanc_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
