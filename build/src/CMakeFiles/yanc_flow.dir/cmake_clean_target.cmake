file(REMOVE_RECURSE
  "libyanc_flow.a"
)
