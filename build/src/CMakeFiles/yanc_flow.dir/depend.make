# Empty dependencies file for yanc_flow.
# This may be replaced when dependencies are built.
