file(REMOVE_RECURSE
  "CMakeFiles/yanc_flow.dir/yanc/flow/action.cpp.o"
  "CMakeFiles/yanc_flow.dir/yanc/flow/action.cpp.o.d"
  "CMakeFiles/yanc_flow.dir/yanc/flow/flowspec.cpp.o"
  "CMakeFiles/yanc_flow.dir/yanc/flow/flowspec.cpp.o.d"
  "CMakeFiles/yanc_flow.dir/yanc/flow/match.cpp.o"
  "CMakeFiles/yanc_flow.dir/yanc/flow/match.cpp.o.d"
  "libyanc_flow.a"
  "libyanc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
