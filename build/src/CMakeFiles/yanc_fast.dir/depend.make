# Empty dependencies file for yanc_fast.
# This may be replaced when dependencies are built.
