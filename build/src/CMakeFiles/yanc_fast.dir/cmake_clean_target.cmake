file(REMOVE_RECURSE
  "libyanc_fast.a"
)
