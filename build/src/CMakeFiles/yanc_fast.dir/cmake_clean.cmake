file(REMOVE_RECURSE
  "CMakeFiles/yanc_fast.dir/yanc/fast/consumer.cpp.o"
  "CMakeFiles/yanc_fast.dir/yanc/fast/consumer.cpp.o.d"
  "CMakeFiles/yanc_fast.dir/yanc/fast/syscall_model.cpp.o"
  "CMakeFiles/yanc_fast.dir/yanc/fast/syscall_model.cpp.o.d"
  "libyanc_fast.a"
  "libyanc_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
