file(REMOVE_RECURSE
  "libyanc_vfs.a"
)
