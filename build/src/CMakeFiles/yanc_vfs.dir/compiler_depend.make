# Empty compiler generated dependencies file for yanc_vfs.
# This may be replaced when dependencies are built.
