file(REMOVE_RECURSE
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/acl.cpp.o"
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/acl.cpp.o.d"
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/memfs.cpp.o"
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/memfs.cpp.o.d"
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/vfs.cpp.o"
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/vfs.cpp.o.d"
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/watch.cpp.o"
  "CMakeFiles/yanc_vfs.dir/yanc/vfs/watch.cpp.o.d"
  "libyanc_vfs.a"
  "libyanc_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
