
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yanc/vfs/acl.cpp" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/acl.cpp.o" "gcc" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/acl.cpp.o.d"
  "/root/repo/src/yanc/vfs/memfs.cpp" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/memfs.cpp.o" "gcc" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/memfs.cpp.o.d"
  "/root/repo/src/yanc/vfs/vfs.cpp" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/vfs.cpp.o" "gcc" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/vfs.cpp.o.d"
  "/root/repo/src/yanc/vfs/watch.cpp" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/watch.cpp.o" "gcc" "src/CMakeFiles/yanc_vfs.dir/yanc/vfs/watch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/yanc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
