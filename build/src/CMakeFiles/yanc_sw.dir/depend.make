# Empty dependencies file for yanc_sw.
# This may be replaced when dependencies are built.
