file(REMOVE_RECURSE
  "libyanc_sw.a"
)
