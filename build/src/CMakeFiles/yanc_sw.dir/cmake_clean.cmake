file(REMOVE_RECURSE
  "CMakeFiles/yanc_sw.dir/yanc/sw/flow_table.cpp.o"
  "CMakeFiles/yanc_sw.dir/yanc/sw/flow_table.cpp.o.d"
  "CMakeFiles/yanc_sw.dir/yanc/sw/switch.cpp.o"
  "CMakeFiles/yanc_sw.dir/yanc/sw/switch.cpp.o.d"
  "libyanc_sw.a"
  "libyanc_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
