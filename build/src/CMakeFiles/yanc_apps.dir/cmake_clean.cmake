file(REMOVE_RECURSE
  "CMakeFiles/yanc_apps.dir/yanc/apps/arp_responder.cpp.o"
  "CMakeFiles/yanc_apps.dir/yanc/apps/arp_responder.cpp.o.d"
  "CMakeFiles/yanc_apps.dir/yanc/apps/auditor.cpp.o"
  "CMakeFiles/yanc_apps.dir/yanc/apps/auditor.cpp.o.d"
  "CMakeFiles/yanc_apps.dir/yanc/apps/dhcp_server.cpp.o"
  "CMakeFiles/yanc_apps.dir/yanc/apps/dhcp_server.cpp.o.d"
  "CMakeFiles/yanc_apps.dir/yanc/apps/learning_switch.cpp.o"
  "CMakeFiles/yanc_apps.dir/yanc/apps/learning_switch.cpp.o.d"
  "CMakeFiles/yanc_apps.dir/yanc/apps/router.cpp.o"
  "CMakeFiles/yanc_apps.dir/yanc/apps/router.cpp.o.d"
  "CMakeFiles/yanc_apps.dir/yanc/apps/static_flow_pusher.cpp.o"
  "CMakeFiles/yanc_apps.dir/yanc/apps/static_flow_pusher.cpp.o.d"
  "libyanc_apps.a"
  "libyanc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yanc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
