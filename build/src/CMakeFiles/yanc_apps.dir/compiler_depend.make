# Empty compiler generated dependencies file for yanc_apps.
# This may be replaced when dependencies are built.
