file(REMOVE_RECURSE
  "libyanc_apps.a"
)
