
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yanc/apps/arp_responder.cpp" "src/CMakeFiles/yanc_apps.dir/yanc/apps/arp_responder.cpp.o" "gcc" "src/CMakeFiles/yanc_apps.dir/yanc/apps/arp_responder.cpp.o.d"
  "/root/repo/src/yanc/apps/auditor.cpp" "src/CMakeFiles/yanc_apps.dir/yanc/apps/auditor.cpp.o" "gcc" "src/CMakeFiles/yanc_apps.dir/yanc/apps/auditor.cpp.o.d"
  "/root/repo/src/yanc/apps/dhcp_server.cpp" "src/CMakeFiles/yanc_apps.dir/yanc/apps/dhcp_server.cpp.o" "gcc" "src/CMakeFiles/yanc_apps.dir/yanc/apps/dhcp_server.cpp.o.d"
  "/root/repo/src/yanc/apps/learning_switch.cpp" "src/CMakeFiles/yanc_apps.dir/yanc/apps/learning_switch.cpp.o" "gcc" "src/CMakeFiles/yanc_apps.dir/yanc/apps/learning_switch.cpp.o.d"
  "/root/repo/src/yanc/apps/router.cpp" "src/CMakeFiles/yanc_apps.dir/yanc/apps/router.cpp.o" "gcc" "src/CMakeFiles/yanc_apps.dir/yanc/apps/router.cpp.o.d"
  "/root/repo/src/yanc/apps/static_flow_pusher.cpp" "src/CMakeFiles/yanc_apps.dir/yanc/apps/static_flow_pusher.cpp.o" "gcc" "src/CMakeFiles/yanc_apps.dir/yanc/apps/static_flow_pusher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/yanc_netfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yanc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yanc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yanc_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yanc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yanc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
