file(REMOVE_RECURSE
  "CMakeFiles/bench_bulk_push.dir/bench_bulk_push.cpp.o"
  "CMakeFiles/bench_bulk_push.dir/bench_bulk_push.cpp.o.d"
  "bench_bulk_push"
  "bench_bulk_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bulk_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
