# Empty dependencies file for bench_bulk_push.
# This may be replaced when dependencies are built.
