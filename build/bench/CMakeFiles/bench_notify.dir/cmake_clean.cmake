file(REMOVE_RECURSE
  "CMakeFiles/bench_notify.dir/bench_notify.cpp.o"
  "CMakeFiles/bench_notify.dir/bench_notify.cpp.o.d"
  "bench_notify"
  "bench_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
