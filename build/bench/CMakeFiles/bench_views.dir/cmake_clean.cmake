file(REMOVE_RECURSE
  "CMakeFiles/bench_views.dir/bench_views.cpp.o"
  "CMakeFiles/bench_views.dir/bench_views.cpp.o.d"
  "bench_views"
  "bench_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
