file(REMOVE_RECURSE
  "CMakeFiles/bench_fs_ops.dir/bench_fs_ops.cpp.o"
  "CMakeFiles/bench_fs_ops.dir/bench_fs_ops.cpp.o.d"
  "bench_fs_ops"
  "bench_fs_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fs_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
