# Empty dependencies file for bench_fs_ops.
# This may be replaced when dependencies are built.
