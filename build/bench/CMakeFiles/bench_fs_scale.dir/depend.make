# Empty dependencies file for bench_fs_scale.
# This may be replaced when dependencies are built.
