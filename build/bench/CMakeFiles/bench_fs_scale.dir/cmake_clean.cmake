file(REMOVE_RECURSE
  "CMakeFiles/bench_fs_scale.dir/bench_fs_scale.cpp.o"
  "CMakeFiles/bench_fs_scale.dir/bench_fs_scale.cpp.o.d"
  "bench_fs_scale"
  "bench_fs_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fs_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
