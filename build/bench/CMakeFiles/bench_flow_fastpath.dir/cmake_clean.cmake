file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_fastpath.dir/bench_flow_fastpath.cpp.o"
  "CMakeFiles/bench_flow_fastpath.dir/bench_flow_fastpath.cpp.o.d"
  "bench_flow_fastpath"
  "bench_flow_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
