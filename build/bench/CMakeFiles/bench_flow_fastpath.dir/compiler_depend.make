# Empty compiler generated dependencies file for bench_flow_fastpath.
# This may be replaced when dependencies are built.
