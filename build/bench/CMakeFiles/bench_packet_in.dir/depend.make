# Empty dependencies file for bench_packet_in.
# This may be replaced when dependencies are built.
