file(REMOVE_RECURSE
  "CMakeFiles/bench_packet_in.dir/bench_packet_in.cpp.o"
  "CMakeFiles/bench_packet_in.dir/bench_packet_in.cpp.o.d"
  "bench_packet_in"
  "bench_packet_in.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet_in.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
