# Empty compiler generated dependencies file for reactive_router.
# This may be replaced when dependencies are built.
