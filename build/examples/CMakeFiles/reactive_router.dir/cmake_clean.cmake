file(REMOVE_RECURSE
  "CMakeFiles/reactive_router.dir/reactive_router.cpp.o"
  "CMakeFiles/reactive_router.dir/reactive_router.cpp.o.d"
  "reactive_router"
  "reactive_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
