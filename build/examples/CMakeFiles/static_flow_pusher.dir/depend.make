# Empty dependencies file for static_flow_pusher.
# This may be replaced when dependencies are built.
