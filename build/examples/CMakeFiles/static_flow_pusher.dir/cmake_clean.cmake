file(REMOVE_RECURSE
  "CMakeFiles/static_flow_pusher.dir/static_flow_pusher.cpp.o"
  "CMakeFiles/static_flow_pusher.dir/static_flow_pusher.cpp.o.d"
  "static_flow_pusher"
  "static_flow_pusher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_flow_pusher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
