# Empty compiler generated dependencies file for distributed_controller.
# This may be replaced when dependencies are built.
