file(REMOVE_RECURSE
  "CMakeFiles/sliced_network.dir/sliced_network.cpp.o"
  "CMakeFiles/sliced_network.dir/sliced_network.cpp.o.d"
  "sliced_network"
  "sliced_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliced_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
