# Empty dependencies file for sliced_network.
# This may be replaced when dependencies are built.
