# Empty dependencies file for yancsh.
# This may be replaced when dependencies are built.
