file(REMOVE_RECURSE
  "CMakeFiles/yancsh.dir/yancsh.cpp.o"
  "CMakeFiles/yancsh.dir/yancsh.cpp.o.d"
  "yancsh"
  "yancsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yancsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
