file(REMOVE_RECURSE
  "CMakeFiles/fast_test.dir/fast_test.cpp.o"
  "CMakeFiles/fast_test.dir/fast_test.cpp.o.d"
  "fast_test"
  "fast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
