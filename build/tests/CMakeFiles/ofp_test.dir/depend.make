# Empty dependencies file for ofp_test.
# This may be replaced when dependencies are built.
