file(REMOVE_RECURSE
  "CMakeFiles/ofp_test.dir/ofp_test.cpp.o"
  "CMakeFiles/ofp_test.dir/ofp_test.cpp.o.d"
  "ofp_test"
  "ofp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
