file(REMOVE_RECURSE
  "CMakeFiles/netfs_test.dir/netfs_test.cpp.o"
  "CMakeFiles/netfs_test.dir/netfs_test.cpp.o.d"
  "netfs_test"
  "netfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
