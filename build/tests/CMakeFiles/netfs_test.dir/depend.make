# Empty dependencies file for netfs_test.
# This may be replaced when dependencies are built.
